package heterosw

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"heterosw/internal/datagen"
)

// Manifest hot-reload: the coordinator re-reads its manifest (SIGHUP /
// POST /admin/reload) and swaps the serving topology onto a re-cut shard
// layout without restarting — with temp+rename discipline: the incoming
// manifest is validated and built into a complete engine before anything
// is published, a failed reload leaves the old topology serving, and
// in-flight queries hold the engine they started with, so a reload never
// tears a response.

// reloadSetup builds a parent database with TWO shard cuts (2-way and
// 3-way), one node serving every shard file of both cuts, and a
// coordinator constructed on the 2-way manifest. Reloading is then just
// overwriting the manifest file in place with either cut's content.
func reloadSetup(t *testing.T) (coord *Cluster, manifestPath string, cut2, cut3 []byte, queries []Sequence, want [][]byte) {
	t.Helper()
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)
	dir3 := t.TempDir()
	manifest3, err := SplitIndexFile(parentPath, 3, dir3, "re")
	if err != nil {
		t.Fatal(err)
	}
	cut2, err = os.ReadFile(manifestPath)
	if err != nil {
		t.Fatal(err)
	}
	cut3, err = os.ReadFile(manifest3)
	if err != nil {
		t.Fatal(err)
	}
	allShards := append(append([]string(nil), shardPaths...),
		filepath.Join(dir3, "re-00.swdb"),
		filepath.Join(dir3, "re-01.swdb"),
		filepath.Join(dir3, "re-02.swdb"),
	)
	node, _ := startShardNode(t, allShards, nil)

	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err = NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{node.URL}, liveDistribOptions())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.CloseNow)

	rep := ReportOptions{Alignments: true, EValues: true, TopK: 5}
	want = refCanon(t, parentPath, queries, rep)
	return coord, manifestPath, cut2, cut3, queries, want
}

// reloadRep is the report shape every reload test compares under.
var reloadRep = ReportOptions{Alignments: true, EValues: true, TopK: 5}

func checkConform(t *testing.T, phase string, coord *Cluster, queries []Sequence, want [][]byte) {
	t.Helper()
	for i, q := range queries {
		res, err := coord.Search(q, reloadRep)
		if err != nil {
			t.Fatalf("%s: Search(%s): %v", phase, q.ID(), err)
		}
		if got := canonDistrib(t, res); !bytes.Equal(got, want[i]) {
			t.Fatalf("%s: query %s diverged from single-node:\nwant %s\ngot  %s", phase, q.ID(), want[i], got)
		}
	}
}

// TestManifestHotReload pins the happy path: reload onto a 3-way re-cut
// of the same parent, then back to the 2-way cut, with results
// byte-identical to single-node across every generation.
func TestManifestHotReload(t *testing.T) {
	coord, manifestPath, cut2, cut3, queries, want := reloadSetup(t)
	ctx := context.Background()

	checkConform(t, "generation 1 (2-way)", coord, queries, want)
	if topo := coord.Topology(); topo.Generation != 1 || len(topo.Shards) != 2 {
		t.Fatalf("initial topology: %+v", topo)
	}

	if err := os.WriteFile(manifestPath, cut3, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := coord.ReloadManifest(ctx); err != nil {
		t.Fatalf("reload onto the 3-way cut: %v", err)
	}
	topo := coord.Topology()
	if topo.Generation != 2 || topo.Reloads != 1 || len(topo.Shards) != 3 {
		t.Fatalf("post-reload topology: generation %d reloads %d shards %d, want 2/1/3",
			topo.Generation, topo.Reloads, len(topo.Shards))
	}
	checkConform(t, "generation 2 (3-way)", coord, queries, want)

	if err := os.WriteFile(manifestPath, cut2, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := coord.ReloadManifest(ctx); err != nil {
		t.Fatalf("reload back onto the 2-way cut: %v", err)
	}
	if topo := coord.Topology(); topo.Generation != 3 || len(topo.Shards) != 2 {
		t.Fatalf("post-revert topology: %+v", topo)
	}
	checkConform(t, "generation 3 (2-way again)", coord, queries, want)
}

// TestReloadInvalidManifestKeepsServing pins the failure discipline for
// unreadable content: the reload reports the parse failure, the failure
// counter moves, and the old topology keeps answering byte-identically.
func TestReloadInvalidManifestKeepsServing(t *testing.T) {
	coord, manifestPath, _, _, queries, want := reloadSetup(t)

	if err := os.WriteFile(manifestPath, []byte(`{"version": garbage`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := coord.ReloadManifest(context.Background()); err == nil {
		t.Fatal("reloading a corrupt manifest must fail")
	}
	topo := coord.Topology()
	if topo.Generation != 1 || topo.ReloadFailures != 1 || topo.Reloads != 0 {
		t.Fatalf("after failed reload: generation %d failures %d reloads %d, want 1/1/0",
			topo.Generation, topo.ReloadFailures, topo.Reloads)
	}
	checkConform(t, "after corrupt-manifest reload", coord, queries, want)
}

// TestReloadWrongParentRejected pins the identity gate on the hot path:
// a manifest cut from a different database is refused with the same
// "manifest parent" diagnosis construction gives, and the old topology
// keeps serving.
func TestReloadWrongParentRejected(t *testing.T) {
	coord, manifestPath, _, _, queries, want := reloadSetup(t)

	otherSeqs := wrapSeqs(datagen.Generate(datagen.Config{
		Sequences: 64, Seed: 99, MeanLen: 80, SigmaLog: 0.4, MaxLen: 2000,
	}))
	otherDB, err := NewDatabase(otherSeqs)
	if err != nil {
		t.Fatal(err)
	}
	otherDir := t.TempDir()
	otherPath := filepath.Join(otherDir, "other.swdb")
	if err := WriteIndexFile(otherPath, otherDB); err != nil {
		t.Fatal(err)
	}
	otherManifest, err := SplitIndexFile(otherPath, 2, otherDir, "")
	if err != nil {
		t.Fatal(err)
	}
	alien, err := os.ReadFile(otherManifest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(manifestPath, alien, 0o644); err != nil {
		t.Fatal(err)
	}
	err = coord.ReloadManifest(context.Background())
	if err == nil {
		t.Fatal("reloading another database's manifest must fail")
	}
	if !strings.Contains(err.Error(), "manifest parent") {
		t.Fatalf("refusal should name the key mismatch, got: %v", err)
	}
	if topo := coord.Topology(); topo.Generation != 1 || topo.ReloadFailures != 1 {
		t.Fatalf("alien manifest moved the topology: %+v", topo)
	}
	checkConform(t, "after alien-manifest reload", coord, queries, want)
}

// TestReloadUnownedShardRejected pins coverage-gating on the hot path: a
// re-cut whose shards no node serves is refused — the build happens
// before the swap — and the old topology keeps serving.
func TestReloadUnownedShardRejected(t *testing.T) {
	// This setup's node serves only the 2-way cut, so the 3-way manifest
	// is valid but uncovered.
	parentPath, manifestPath, shardPaths, queries := distribSetup(t)
	dir3 := t.TempDir()
	manifest3, err := SplitIndexFile(parentPath, 3, dir3, "re")
	if err != nil {
		t.Fatal(err)
	}
	cut3, err := os.ReadFile(manifest3)
	if err != nil {
		t.Fatal(err)
	}
	node, _ := startShardNode(t, shardPaths, nil)
	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{node.URL}, liveDistribOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()
	want := refCanon(t, parentPath, queries, reloadRep)

	if err := os.WriteFile(manifestPath, cut3, 0o644); err != nil {
		t.Fatal(err)
	}
	err = coord.ReloadManifest(context.Background())
	if err == nil {
		t.Fatal("reloading a cut nobody serves must fail")
	}
	if !strings.Contains(err.Error(), "no node serves shard") {
		t.Fatalf("refusal should name the unowned shard, got: %v", err)
	}
	if topo := coord.Topology(); topo.Generation != 1 || len(topo.Shards) != 2 {
		t.Fatalf("uncovered reload moved the topology: %+v", topo)
	}
	checkConform(t, "after uncovered reload", coord, queries, want)
}

// TestReloadRacesInflightQueries flips the topology between the two cuts
// while a concurrent query load runs: every query must answer
// byte-identically whichever generation it lands on — a reload must
// never tear a response — and the -race build must stay silent.
func TestReloadRacesInflightQueries(t *testing.T) {
	coord, manifestPath, cut2, cut3, queries, want := reloadSetup(t)

	workers, perWorker, flips := 4, 6, 10
	if testing.Short() {
		workers, perWorker, flips = 2, 3, 4
	}
	var wg sync.WaitGroup
	errc := make(chan error, workers*perWorker)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				qi := (w + i) % len(queries)
				res, err := coord.Search(queries[qi], reloadRep)
				if err != nil {
					errc <- fmt.Errorf("worker %d query %d: %w", w, i, err)
					return
				}
				if got := canonDistrib(t, res); !bytes.Equal(got, want[qi]) {
					errc <- fmt.Errorf("worker %d query %d: result torn across a reload", w, i)
					return
				}
			}
		}(w)
	}
	ctx := context.Background()
	for i := 0; i < flips; i++ {
		content := cut3
		if i%2 == 1 {
			content = cut2
		}
		if err := os.WriteFile(manifestPath, content, 0o644); err != nil {
			t.Fatal(err)
		}
		if err := coord.ReloadManifest(ctx); err != nil {
			t.Fatalf("reload flip %d: %v", i, err)
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	if topo := coord.Topology(); topo.Reloads != flips {
		t.Fatalf("reloads %d, want %d", topo.Reloads, flips)
	}
	checkConform(t, "after the flip storm", coord, queries, want)
}

// TestAdminEndpoints pins the HTTP face of the live topology: /healthz
// carries the topology document and degrades when a shard loses its last
// replica; /admin/reload and /admin/probe answer 200/409/404 per the
// documented contract.
func TestAdminEndpoints(t *testing.T) {
	coord, manifestPath, _, cut3, _, _ := reloadSetup(t)
	front := httptest.NewServer(NewHTTPHandler(coord))
	defer front.Close()

	// healthz: ok, with the topology document attached.
	var health struct {
		Status   string        `json:"status"`
		Topology *TopologyInfo `json:"topology"`
	}
	adminGet(t, front.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" || health.Topology == nil || health.Topology.Generation != 1 {
		t.Fatalf("healthz: %+v, want ok with generation-1 topology", health)
	}

	// admin/probe: a sweep, answering the refreshed topology.
	var probed TopologyInfo
	adminPost(t, front.URL+"/admin/probe", http.StatusOK, &probed)
	if len(probed.Nodes) != 1 || probed.Nodes[0].State != "healthy" {
		t.Fatalf("admin/probe topology: %+v", probed.Nodes)
	}

	// admin/reload: 200 with the new generation on success...
	if err := os.WriteFile(manifestPath, cut3, 0o644); err != nil {
		t.Fatal(err)
	}
	var reloaded struct {
		Status     string `json:"status"`
		Generation int    `json:"generation"`
	}
	adminPost(t, front.URL+"/admin/reload", http.StatusOK, &reloaded)
	if reloaded.Status != "ok" || reloaded.Generation != 2 {
		t.Fatalf("admin/reload: %+v, want ok/2", reloaded)
	}

	// ... and 409 with the old topology intact on failure.
	if err := os.WriteFile(manifestPath, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	var failBody struct {
		Error string `json:"error"`
	}
	adminPost(t, front.URL+"/admin/reload", http.StatusConflict, &failBody)
	if failBody.Error == "" {
		t.Fatal("409 reload must say why")
	}
	if topo := coord.Topology(); topo.Generation != 2 {
		t.Fatalf("failed reload moved the generation to %d", topo.Generation)
	}

	// GET where POST is required.
	resp, err := http.Get(front.URL + "/admin/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /admin/reload = %d, want 405", resp.StatusCode)
	}
}

// TestAdminEndpointsLocalCluster pins that a plain local cluster answers
// 404 on the coordinator-only admin endpoints and serves a topology-free
// healthz.
func TestAdminEndpointsLocalCluster(t *testing.T) {
	db, _ := SyntheticSwissProt(0.001, false)
	cl, err := NewCluster(db, distribOpts())
	if err != nil {
		t.Fatal(err)
	}
	defer cl.CloseNow()
	front := httptest.NewServer(NewHTTPHandler(cl))
	defer front.Close()

	for _, path := range []string{"/admin/reload", "/admin/probe"} {
		resp, err := http.Post(front.URL+path, "application/json", nil)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("POST %s on a local cluster = %d, want 404", path, resp.StatusCode)
		}
	}
	var health struct {
		Status   string          `json:"status"`
		Topology json.RawMessage `json:"topology"`
	}
	adminGet(t, front.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" || len(health.Topology) != 0 {
		t.Fatalf("local healthz: %+v, want ok with no topology", health)
	}
}

// TestHealthzDegradedOnUncoveredShard pins the load-balancer signal: the
// moment a shard has no live replica, /healthz flips to "degraded".
func TestHealthzDegradedOnUncoveredShard(t *testing.T) {
	parentPath, manifestPath, shardPaths, _ := distribSetup(t)
	pxA := proxiedShardNode(t, shardPaths)
	parentDB, err := OpenIndexFile(parentPath)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := NewDistributedCluster(context.Background(), parentDB, manifestPath, []string{pxA.URL()}, liveDistribOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer coord.CloseNow()
	front := httptest.NewServer(NewHTTPHandler(coord))
	defer front.Close()

	pxA.SetDown(true)
	ctx := context.Background()
	if err := coord.ProbeNodes(ctx); err != nil {
		t.Fatal(err)
	}
	if err := coord.ProbeNodes(ctx); err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status   string        `json:"status"`
		Topology *TopologyInfo `json:"topology"`
	}
	adminGet(t, front.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "degraded" {
		t.Fatalf("healthz status %q with every shard uncovered, want degraded", health.Status)
	}
	if health.Topology == nil || !health.Topology.Uncovered() {
		t.Fatalf("degraded healthz topology: %+v", health.Topology)
	}

	// Recovery flips it straight back.
	pxA.SetDown(false)
	if err := coord.ProbeNodes(ctx); err != nil {
		t.Fatal(err)
	}
	adminGet(t, front.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "ok" {
		t.Fatalf("healthz status %q after recovery, want ok", health.Status)
	}
}

func adminGet(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func adminPost(t *testing.T, url string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("POST %s = %d, want %d", url, resp.StatusCode, wantStatus)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
}
