package heterosw

import (
	"strings"
	"testing"
)

func tinyDB(t *testing.T) (*Database, []Sequence) {
	t.Helper()
	seqs := []Sequence{
		NewSequence("s1", "MKWVLAARND"),
		NewSequence("s2", "CCQEGHIL"),
		NewSequence("s3", "MKWVLA"),
		NewSequence("s4", "WYVKMF"),
	}
	db, err := NewDatabase(seqs)
	if err != nil {
		t.Fatal(err)
	}
	return db, seqs
}

func TestSearchDefaults(t *testing.T) {
	db, _ := tinyDB(t)
	res, err := db.Search(NewSequence("q", "MKWVLA"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 4 || len(res.Scores) != 4 {
		t.Fatalf("hits %d scores %d", len(res.Hits), len(res.Scores))
	}
	// The best hit must be one of the sequences containing MKWVLA.
	if res.Hits[0].ID != "s1" && res.Hits[0].ID != "s3" {
		t.Fatalf("top hit %q", res.Hits[0].ID)
	}
	for i := 1; i < len(res.Hits); i++ {
		if res.Hits[i].Score > res.Hits[i-1].Score {
			t.Fatal("hits not sorted")
		}
	}
	if res.SimGCUPS <= 0 || res.SimSeconds <= 0 {
		t.Fatalf("timing: %+v", res)
	}
	if res.Threads != 32 { // Xeon default
		t.Fatalf("threads = %d", res.Threads)
	}
}

func TestSearchAllVariantsAgree(t *testing.T) {
	db, _ := tinyDB(t)
	q := NewSequence("q", "MKWVLARN")
	var want []int
	for _, v := range Variants() {
		res, err := db.Search(q, Options{Variant: v, Device: DevicePhi})
		if err != nil {
			t.Fatalf("%s: %v", v, err)
		}
		if want == nil {
			want = res.Scores
			continue
		}
		for i := range want {
			if res.Scores[i] != want[i] {
				t.Fatalf("%s: score %d differs: %d vs %d", v, i, res.Scores[i], want[i])
			}
		}
	}
}

func TestSearchOptionErrors(t *testing.T) {
	db, _ := tinyDB(t)
	q := NewSequence("q", "MKWVLA")
	cases := []Options{
		{Variant: "avx512-madness"},
		{Matrix: "BLOSUM13"},
		{Schedule: "fifo"},
		{Device: "gpu"},
		{Threads: 10000},
	}
	for i, opt := range cases {
		if _, err := db.Search(q, opt); err == nil {
			t.Errorf("case %d accepted: %+v", i, opt)
		}
	}
	if _, err := db.Search(Sequence{}, Options{}); err == nil {
		t.Error("zero-value query accepted")
	}
	if _, err := NewDatabase([]Sequence{{}}); err == nil {
		t.Error("zero-value database sequence accepted")
	}
}

func TestSearchHetero(t *testing.T) {
	db, _ := tinyDB(t)
	q := NewSequence("q", "MKWVLA")
	single, err := db.Search(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	het, err := db.SearchHetero(q, HeteroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Scores {
		if het.Scores[i] != single.Scores[i] {
			t.Fatalf("hetero score %d differs", i)
		}
	}
	if het.PhiShare <= 0 || het.CPUShare <= 0 {
		t.Fatalf("shares: %+v", het)
	}
	if het.SimSeconds != max(het.CPUSeconds, het.PhiSeconds) {
		t.Fatalf("SimSeconds %v != max(%v, %v)", het.SimSeconds, het.CPUSeconds, het.PhiSeconds)
	}
	if _, err := db.SearchHetero(q, HeteroOptions{PhiShare: 2}); err == nil {
		t.Error("PhiShare 2 accepted")
	}
}

// NoShareDefault makes a literal zero coprocessor share expressible
// without the legacy negative sentinel, while zero-value options keep the
// paper's 0.55 default.
func TestHeteroNoShareDefault(t *testing.T) {
	db, seqs := tinyDB(t)
	q := seqs[0]
	zero, err := db.SearchHetero(q, HeteroOptions{NoShareDefault: true})
	if err != nil {
		t.Fatal(err)
	}
	if zero.PhiShare != 0 || zero.CPUShare != 1 {
		t.Fatalf("explicit zero share realised as %+v", zero)
	}
	if zero.PhiSeconds != 0 {
		t.Fatalf("Phi busy %v with a zero share", zero.PhiSeconds)
	}
	// The legacy sentinel still works for existing callers...
	legacy, err := db.SearchHetero(q, HeteroOptions{PhiShare: -1})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.PhiShare != 0 {
		t.Fatalf("legacy sentinel realised as %+v", legacy)
	}
	// ...but is rejected when the explicit mode is on.
	if _, err := db.SearchHetero(q, HeteroOptions{PhiShare: -1, NoShareDefault: true}); err == nil {
		t.Error("negative share accepted with NoShareDefault")
	}
	// A set share behaves identically in both modes.
	a, err := db.SearchHetero(q, HeteroOptions{PhiShare: 0.4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.SearchHetero(q, HeteroOptions{PhiShare: 0.4, NoShareDefault: true})
	if err != nil {
		t.Fatal(err)
	}
	if a.PhiShare != b.PhiShare || a.Scores[0] != b.Scores[0] {
		t.Fatalf("explicit mode changed a set share: %v vs %v", a.PhiShare, b.PhiShare)
	}
	// Zero-value options still mean the paper's 0.55.
	def, err := db.SearchHetero(q, HeteroOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if def.PhiShare == 0 {
		t.Fatal("zero-value options lost the paper default")
	}
}

func TestAlignAPI(t *testing.T) {
	a := NewSequence("a", "MKWVLAARND")
	b := NewSequence("b", "GGMKWVLAGG")
	al, err := Align(a, b, AlignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Score(a, b, AlignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if al.Score() != sc {
		t.Fatalf("Align %d != Score %d", al.Score(), sc)
	}
	if al.Identities() < 6 {
		t.Fatalf("identities %d", al.Identities())
	}
	if !strings.Contains(al.CIGAR(), "M") {
		t.Fatalf("CIGAR %q", al.CIGAR())
	}
	aS, aE, bS, bE := al.Coordinates()
	if aE <= aS || bE <= bS {
		t.Fatalf("coordinates %d %d %d %d", aS, aE, bS, bE)
	}
	if al.Format(40) == "" {
		t.Fatal("empty Format")
	}
	banded, err := ScoreBanded(a, b, 2, 3, AlignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if banded > sc {
		t.Fatalf("banded %d > full %d", banded, sc)
	}
	if _, err := Align(Sequence{}, b, AlignOptions{}); err == nil {
		t.Error("zero-value sequence accepted")
	}
	if _, err := Score(a, b, AlignOptions{Matrix: "nope"}); err == nil {
		t.Error("bad matrix accepted")
	}
}

func TestSyntheticSwissProt(t *testing.T) {
	db, queries := SyntheticSwissProt(0.001, true)
	if db.Len() < 500 {
		t.Fatalf("db too small: %d", db.Len())
	}
	if len(queries) != 20 {
		t.Fatalf("%d queries", len(queries))
	}
	lengths := PaperQueryLengths()
	if queries[0].Len() != lengths[0] || queries[19].Len() != lengths[19] {
		t.Fatal("query lengths mismatch")
	}
	// A planted query's top hit must be itself (perfect score).
	res, err := db.Search(queries[0], Options{TopK: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hits[0].ID != queries[0].ID() {
		t.Fatalf("top hit %q, want planted %q", res.Hits[0].ID, queries[0].ID())
	}
}

func TestFASTARoundTripAPI(t *testing.T) {
	dir := t.TempDir()
	path := dir + "/x.fasta"
	seqs := []Sequence{NewSequence("a", "ARND"), NewSequence("b", "WWYV")}
	if err := WriteFASTAFile(path, seqs); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFASTAFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 2 || back[0].String() != "ARND" || back[1].ID() != "b" {
		t.Fatalf("round trip: %+v", back)
	}
	if _, err := ReadFASTA(strings.NewReader(">x\nMKV\n")); err != nil {
		t.Fatal(err)
	}
}

func TestDevicesInfo(t *testing.T) {
	devs := Devices()
	if len(devs) != 2 {
		t.Fatalf("%d devices", len(devs))
	}
	if devs[0].Kind != DeviceXeon || devs[0].Threads != 32 {
		t.Fatalf("xeon info: %+v", devs[0])
	}
	if devs[1].Kind != DevicePhi || devs[1].Threads != 240 || devs[1].Lanes != 32 {
		t.Fatalf("phi info: %+v", devs[1])
	}
}

func TestUnsortedDatabase(t *testing.T) {
	seqs := []Sequence{NewSequence("a", "AR"), NewSequence("b", "ARNDCQEG")}
	db, err := NewDatabaseUnsorted(seqs)
	if err != nil {
		t.Fatal(err)
	}
	res, err := db.Search(NewSequence("q", "ARND"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 2 {
		t.Fatalf("%d hits", len(res.Hits))
	}
}

func TestSequenceBasics(t *testing.T) {
	s := NewSequence("id1", "mkwvla")
	if s.ID() != "id1" || s.Len() != 6 || s.String() != "MKWVLA" {
		t.Fatalf("%q %d %q", s.ID(), s.Len(), s.String())
	}
	sub := s.Slice(1, 4)
	if sub.String() != "KWV" {
		t.Fatalf("slice %q", sub.String())
	}
	var zero Sequence
	if zero.ID() != "" || zero.Len() != 0 || zero.String() != "" || zero.Description() != "" {
		t.Fatal("zero value misbehaves")
	}
}

func TestSignificanceAPI(t *testing.T) {
	db, queries := SyntheticSwissProt(0.002, true)
	res, err := db.Search(queries[4], Options{})
	if err != nil {
		t.Fatal(err)
	}
	sig, err := res.FitSignificance(0)
	if err != nil {
		t.Fatal(err)
	}
	// The planted self-hit must be overwhelmingly significant.
	if e := sig.EValue(res.Hits[0].Score); e > 1e-6 {
		t.Fatalf("self-hit EValue %v", e)
	}
	// A mid-distribution score is unremarkable.
	mid := res.Scores[len(res.Scores)/2]
	if e := sig.EValue(mid); e < 1 {
		t.Fatalf("median score EValue %v, want >> 1", e)
	}
	if sig.BitScore(res.Hits[0].Score) <= sig.BitScore(mid) {
		t.Fatal("bit score ordering broken")
	}
	if sig.PValue(res.Hits[0].Score) > sig.PValue(mid) {
		t.Fatal("p-value ordering broken")
	}
	if sig.String() == "" {
		t.Fatal("empty model description")
	}
}

func TestAutoSplitAPI(t *testing.T) {
	db, queries := SyntheticSwissProt(0.002, true)
	res, err := db.SearchHetero(queries[4], HeteroOptions{AutoSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.PhiShare <= 0 || res.PhiShare >= 1 {
		t.Fatalf("auto split share %v", res.PhiShare)
	}
	single, err := db.Search(queries[4], Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range single.Scores {
		if res.Scores[i] != single.Scores[i] {
			t.Fatalf("auto-split scores differ at %d", i)
		}
	}
}

func TestStripedIntraAPIEquivalence(t *testing.T) {
	long := make([]byte, 3300)
	for i := range long {
		long[i] = "ARNDCQEGHILKMFPSTWYV"[i%20]
	}
	seqs := []Sequence{
		NewSequence("long", string(long)),
		NewSequence("short", "MKWVLAARND"),
	}
	db, err := NewDatabase(seqs)
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", string(long[100:400]))
	wave, err := db.Search(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	striped, err := db.Search(q, Options{IntraKernel: "striped"})
	if err != nil {
		t.Fatal(err)
	}
	for i := range wave.Scores {
		if wave.Scores[i] != striped.Scores[i] {
			t.Fatalf("intra kernels disagree at %d: %d vs %d", i, wave.Scores[i], striped.Scores[i])
		}
	}
	if _, err := db.Search(q, Options{IntraKernel: "systolic"}); err == nil {
		t.Fatal("bogus intra kernel accepted")
	}
}

// The "-8bit" variant spec must run the precision ladder end to end:
// identical scores, per-tier overflow accounting, and twice the lanes on
// every device model.
func TestSearchLadderVariant(t *testing.T) {
	db, _ := tinyDB(t)
	q := NewSequence("q", "MKWVLA")
	ref, err := db.Search(q, Options{Variant: VariantIntrinsicSP})
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []string{VariantIntrinsicSP8, VariantIntrinsicQP8} {
		for _, dev := range []DeviceKind{DeviceXeon, DevicePhi} {
			got, err := db.Search(q, Options{Variant: variant, Device: dev})
			if err != nil {
				t.Fatalf("%s on %s: %v", variant, dev, err)
			}
			for i := range ref.Scores {
				if got.Scores[i] != ref.Scores[i] {
					t.Fatalf("%s on %s: seq %d score %d, want %d", variant, dev, i, got.Scores[i], ref.Scores[i])
				}
			}
			if got.Overflows8 != 0 || got.Overflows != 0 {
				t.Fatalf("%s on %s: unexpected escalations %d/%d on a tiny database", variant, dev, got.Overflows8, got.Overflows)
			}
		}
	}

	// A subject over the biased byte rail escalates once; the counter
	// surfaces at the API level.
	sat, err := NewDatabase([]Sequence{
		NewSequence("sat", strings.Repeat("W", 23)),
		NewSequence("tiny", "ARND"),
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sat.Search(NewSequence("q", strings.Repeat("W", 23)), Options{Variant: VariantIntrinsicSP8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scores[0] != 11*23 {
		t.Fatalf("saturating subject scored %d, want %d", res.Scores[0], 11*23)
	}
	if res.Overflows8 != 1 || res.Overflows != 0 {
		t.Fatalf("escalations %d/%d, want 1/0", res.Overflows8, res.Overflows)
	}

	// The suffix is rejected on non-intrinsic variants.
	if _, err := db.Search(q, Options{Variant: "simd-SP-8bit"}); err == nil {
		t.Fatal("simd-SP-8bit accepted")
	}
}
