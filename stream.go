package heterosw

import (
	"context"
	"fmt"
	"sync"

	"heterosw/internal/qsched"
)

// StreamResult is one delivery of a streaming session.
type StreamResult struct {
	// Index is the query's submission order, starting at 0; results are
	// delivered in submission order.
	Index int
	// Query is the submitted query.
	Query Sequence
	// Result is the search outcome; nil when Err is set. Results may be
	// shared with other submissions of the same residues (the scheduler
	// dedups and caches); treat them as read-only.
	Result *ClusterResult
	// Err reports a failed search (the stream continues past failures).
	Err error
}

// streamBuffer is the Results channel depth: completed results waiting for
// a slow consumer are bounded by this many deliveries plus the reorder
// window of in-flight batches.
const streamBuffer = 64

// streamSub is one submission awaiting ordered delivery.
type streamSub struct {
	query  Sequence
	ticket *qsched.Ticket[*ClusterResult]
}

// Stream is one streaming session over a Cluster, replacing the PR-1
// single-worker pipeline with the concurrent micro-batching scheduler:
// submissions coalesce into adaptive micro-batches, up to MaxInFlight
// batches run concurrently, and a reorder buffer delivers results in
// submission order on Results.
//
// Lifecycle: Close ends intake and lets queued work drain; CloseNow (or
// cancelling the context passed to NewStream) additionally drops queued
// work and aborts in-flight batches at their next query boundary, so an
// abandoned consumer never strands a worker goroutine. Results is closed
// in every case.
type Stream struct {
	ctx    context.Context
	cancel context.CancelFunc
	sched  *qsched.Scheduler[reportQuery, *ClusterResult]
	check  func(ReportOptions) error // the cluster's checkReport
	out    chan StreamResult
	stop   func() bool // releases the context.AfterFunc registration

	// window bounds forwarded-but-undelivered submissions: queries past
	// it wait in `waiting` (holding only a Sequence reference) until
	// delivery frees a slot, so completed-result memory stays bounded
	// however far the producer runs ahead of the Results consumer.
	window int

	mu   sync.Mutex
	cond *sync.Cond
	// submitted, not yet handed to the scheduler
	//sw:guardedBy(mu)
	waiting []reportQuery
	// in the scheduler, awaiting ordered delivery
	//sw:guardedBy(mu)
	subs []streamSub
	// no further Submits (Close, CloseNow or ctx cancel)
	//sw:guardedBy(mu)
	closed bool
	// CloseNow / ctx cancel: drop instead of drain
	//sw:guardedBy(mu)
	aborted bool
	//sw:guardedBy(mu)
	delivering bool
	//sw:guardedBy(mu)
	outClosed bool
}

// NewStream opens a streaming session over the cluster. The session
// inherits the cluster's scheduling knobs and shares its result cache;
// cancelling ctx is equivalent to CloseNow. A nil ctx means
// context.Background. Multiple streams may run concurrently over one
// cluster.
func (c *Cluster) NewStream(ctx context.Context) *Stream {
	if ctx == nil {
		ctx = context.Background()
	}
	sctx, cancel := context.WithCancel(ctx)
	maxBatch := c.schedOpt.MaxBatch
	if maxBatch <= 0 {
		maxBatch = qsched.DefaultMaxBatch
	}
	maxInFlight := c.schedOpt.MaxInFlight
	if maxInFlight <= 0 {
		maxInFlight = qsched.DefaultMaxInFlight
	}
	st := &Stream{
		ctx:    sctx,
		cancel: cancel,
		sched:  c.newScheduler(),
		check:  c.checkReport,
		out:    make(chan StreamResult, streamBuffer),
		window: streamBuffer + maxBatch*maxInFlight,
	}
	st.cond = sync.NewCond(&st.mu)
	st.stop = context.AfterFunc(sctx, st.abort)
	return st
}

// forwardLocked hands waiting queries to the scheduler while delivery
// slots are free. Callers hold st.mu.
//
//sw:locked(mu)
func (st *Stream) forwardLocked() {
	for len(st.waiting) > 0 && len(st.subs) < st.window && !st.aborted {
		rq := st.waiting[0]
		st.waiting[0] = reportQuery{} // release for GC
		st.waiting = st.waiting[1:]
		t, err := st.sched.Submit(rq)
		if err != nil {
			// The scheduler is already torn down (an abort race); the
			// stream is going away with it.
			return
		}
		st.subs = append(st.subs, streamSub{query: rq.seq, ticket: t})
	}
}

// Submit enqueues a query on the stream and returns immediately; the
// matching StreamResult arrives on Results in submission order. An
// optional ReportOptions requests the aligned-hit reporting phases for
// this submission. Submit never blocks (the intake queue is unbounded in
// queries, which cost only a reference each), so the
// submit-everything-then-drain pattern is safe for any backlog size; the
// scheduler is fed at most the stream's forwarding window (streamBuffer
// plus one scheduler pipeline, MaxBatch x MaxInFlight) ahead of the
// Results consumer, which bounds completed-result memory however large
// the backlog. Submit fails after Close.
func (st *Stream) Submit(query Sequence, report ...ReportOptions) error {
	rep, err := oneReport(report)
	if err != nil {
		return err
	}
	if err := st.check(rep); err != nil {
		return err
	}
	if query.impl == nil {
		return fmt.Errorf("heterosw: zero-value query")
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return fmt.Errorf("heterosw: cluster stream closed")
	}
	st.waiting = append(st.waiting, reportQuery{seq: query, rep: rep})
	st.forwardLocked()
	if !st.delivering {
		st.delivering = true
		go st.deliver()
	}
	st.cond.Signal()
	return nil
}

// Results returns the stream delivery channel. It is closed after Close
// once every submitted query has been delivered, or promptly after
// CloseNow / context cancellation.
func (st *Stream) Results() <-chan StreamResult { return st.out }

// Close ends intake: no further Submit calls are accepted, queued and
// in-flight queries still complete, and Results closes once every
// submitted query has been delivered. Close never blocks and is
// idempotent.
func (st *Stream) Close() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	delivering := st.delivering
	st.cond.Broadcast()
	st.mu.Unlock()
	// The scheduler is not closed here: queries still waiting for a
	// delivery slot get forwarded as the consumer drains. The stream is
	// the scheduler's only producer, so closing intake adds nothing; the
	// scheduler idles (no goroutines) once drained and is torn down when
	// delivery finishes.
	if !delivering {
		// Nothing was ever submitted: there is no delivery goroutine to
		// close the channel.
		st.finish()
	}
}

// CloseNow ends the session immediately: intake stops, queued queries are
// dropped, in-flight micro-batches abort at their next query boundary and
// Results closes without delivering the remainder. Safe to call from any
// goroutine, any number of times, including after Close.
func (st *Stream) CloseNow() {
	st.cancel()
	st.abort()
}

// abort is the CloseNow / context-cancellation path; it must be
// idempotent.
func (st *Stream) abort() {
	st.sched.CloseNow()
	st.mu.Lock()
	st.closed = true
	st.aborted = true
	st.waiting = nil // queued work is dropped, not drained
	delivering := st.delivering
	st.cond.Broadcast()
	st.mu.Unlock()
	if !delivering {
		st.finish()
	}
}

// finish closes the Results channel exactly once and releases the
// context resources.
func (st *Stream) finish() {
	st.mu.Lock()
	done := st.outClosed
	st.outClosed = true
	st.mu.Unlock()
	if done {
		return
	}
	close(st.out)
	st.stop()
	st.cancel()
}

// deliver is the reorder buffer: it walks submissions in order, waits for
// each ticket and forwards the result, so out-of-order batch completions
// are delivered in submission order. It exits — closing Results — when the
// stream is closed and drained, or as soon as the stream context is
// cancelled. Consumed submissions are popped from the front of subs (a
// long-lived stream retains memory proportional to its backlog, not to
// everything it ever carried), and each pop frees a forwarding slot for
// the next waiting query.
func (st *Stream) deliver() {
	defer st.finish()
	for i := 0; ; i++ {
		st.mu.Lock()
		for len(st.subs) == 0 && !st.closed {
			st.cond.Wait()
		}
		if len(st.subs) == 0 {
			// Closed and drained: forwardLocked keeps subs non-empty
			// whenever waiting queries remain (outside an abort, where
			// waiting is dropped), so nothing is left behind.
			st.mu.Unlock()
			return
		}
		sub := st.subs[0]
		st.subs[0] = streamSub{} // release for GC
		st.subs = st.subs[1:]
		st.forwardLocked() // a delivery slot freed: pull the next query in
		st.mu.Unlock()

		res, err := sub.ticket.Wait(st.ctx)
		if st.ctx.Err() != nil {
			return
		}
		select {
		case st.out <- StreamResult{Index: i, Query: sub.query, Result: res, Err: err}:
		case <-st.ctx.Done():
			return
		}
	}
}

// defaultStream returns the cluster's lazily created compatibility stream
// backing Cluster.Submit/Results/Close. If Close or CloseNow ran before
// the stream existed, it is created already closed (respectively aborted),
// so Submit fails and Results is closed. The stream lives for the
// cluster's lifetime, not any one request's, so it roots its own context.
//
//sw:ctxroot
func (c *Cluster) defaultStream() *Stream {
	c.mu.Lock()
	if c.defStream == nil {
		c.defStream = c.NewStream(context.Background())
	}
	st := c.defStream
	aborted, closed := c.closed, c.defClosed
	c.mu.Unlock()
	// Both are idempotent; apply the stronger state.
	if aborted {
		st.CloseNow()
	} else if closed {
		st.Close()
	}
	return st
}

// Submit enqueues a query on the cluster's default streaming session (see
// Stream.Submit). Independent sessions — with their own ordering and
// cancellation — come from NewStream.
func (c *Cluster) Submit(query Sequence, report ...ReportOptions) error {
	return c.defaultStream().Submit(query, report...)
}

// Results returns the default streaming session's delivery channel (see
// Stream.Results).
func (c *Cluster) Results() <-chan StreamResult { return c.defaultStream().Results() }

// Close ends the default streaming session gracefully (see Stream.Close).
// Search, SearchBatch and SearchScheduled remain usable. A cluster that
// never streamed just records the closure — a later Results() returns an
// already-closed channel — without constructing stream machinery.
func (c *Cluster) Close() {
	c.mu.Lock()
	c.defClosed = true
	ds := c.defStream
	c.mu.Unlock()
	if ds != nil {
		ds.Close()
	}
	if c.topo != nil {
		c.topo.prober.Stop()
	}
}

// CloseNow tears down the cluster's scheduled paths: the default streaming
// session is aborted (queued work dropped, in-flight batches cancelled at
// their next query boundary) and the serving scheduler stops accepting
// queries. Direct Search and SearchBatch calls remain usable.
func (c *Cluster) CloseNow() {
	c.mu.Lock()
	c.closed = true
	ds := c.defStream
	s := c.serving
	c.mu.Unlock()
	if ds != nil {
		ds.CloseNow()
	}
	if s != nil {
		s.CloseNow()
	}
	if c.topo != nil {
		c.topo.prober.Stop()
	}
}
