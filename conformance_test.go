package heterosw

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"heterosw/internal/datagen"
	"heterosw/internal/vec"
)

// The cross-path conformance harness: a FASTA-loaded database and a
// .swdb-loaded database must be indistinguishable through every entry
// point — Cluster.Search, SearchBatch, SearchScheduled, Stream.Submit and
// POST /search — for every kernel variant including the 8-bit ladder.
// Byte-identical here means the canonical JSON serialisations of the
// results are equal after zeroing host wall-clock fields (the only
// nondeterministic outputs); scores, hit order, alignments, E-values,
// simulated timing and per-backend accounting all participate.

// confDBSeqs is big enough for the Gumbel significance fit ("a few dozen
// sequences") and small enough that the full variant sweep stays fast.
const confDBSeqs = 96

// confSetup writes the shared conformance corpus once per test: a FASTA
// file, the .swdb index built from it, and two queries (one a planted
// fragment of a database sequence, one unrelated).
func confSetup(t *testing.T) (fastaPath, swdbPath string, queries []Sequence) {
	t.Helper()
	dir := t.TempDir()
	seqs := wrapSeqs(datagen.Generate(datagen.Config{
		Sequences: confDBSeqs, Seed: 4242, MeanLen: 90, SigmaLog: 0.5, MaxLen: 4000,
	}))
	fastaPath = filepath.Join(dir, "conf.fasta")
	if err := WriteFASTAFile(fastaPath, seqs); err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(seqs)
	if err != nil {
		t.Fatal(err)
	}
	swdbPath = filepath.Join(dir, "conf.swdb")
	if err := WriteIndexFile(swdbPath, db); err != nil {
		t.Fatal(err)
	}
	// A fragment of a real subject guarantees a strong alignment; the
	// second query exercises the unrelated-noise path.
	donor := seqs[confDBSeqs/2]
	frag := donor.String()
	if len(frag) > 64 {
		frag = frag[:64]
	}
	queries = []Sequence{
		NewSequence("planted", frag),
		NewSequence("random", "MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPF"),
	}
	return fastaPath, swdbPath, queries
}

// canonResult strips the host wall-clock fields — the only legitimately
// machine-dependent outputs — and serialises the rest.
func canonResult(t *testing.T, res *ClusterResult) []byte {
	t.Helper()
	c := *res
	c.WallSeconds, c.WallGCUPS = 0, 0
	raw, err := json.Marshal(&c)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// confEntryPoints runs one (cluster, queries, report) tuple through every
// serving surface and returns the canonical bytes per entry point, in a
// fixed order. The cluster is closed afterwards.
func confEntryPoints(t *testing.T, cl *Cluster, queries []Sequence, rep ReportOptions) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte)
	join := func(parts ...[]byte) []byte { return bytes.Join(parts, []byte("\n")) }

	// Cluster.Search, one call per query.
	var direct [][]byte
	for _, q := range queries {
		res, err := cl.Search(q, rep)
		if err != nil {
			t.Fatalf("Search: %v", err)
		}
		direct = append(direct, canonResult(t, res))
	}
	out["Search"] = join(direct...)

	// SearchBatch over the whole query list.
	batch, err := cl.SearchBatch(queries, rep)
	if err != nil {
		t.Fatalf("SearchBatch: %v", err)
	}
	var batched [][]byte
	for _, res := range batch {
		batched = append(batched, canonResult(t, res))
	}
	out["SearchBatch"] = join(batched...)

	// SearchScheduled through the serving scheduler.
	var scheduled [][]byte
	for _, q := range queries {
		res, err := cl.SearchScheduled(context.Background(), q, rep)
		if err != nil {
			t.Fatalf("SearchScheduled: %v", err)
		}
		scheduled = append(scheduled, canonResult(t, res))
	}
	out["SearchScheduled"] = join(scheduled...)

	// Stream.Submit with ordered delivery.
	st := cl.NewStream(context.Background())
	for _, q := range queries {
		if err := st.Submit(q, rep); err != nil {
			t.Fatalf("Stream.Submit: %v", err)
		}
	}
	st.Close()
	streamed := make([][]byte, 0, len(queries))
	for sr := range st.Results() {
		if sr.Err != nil {
			t.Fatalf("stream result %d: %v", sr.Index, sr.Err)
		}
		streamed = append(streamed, canonResult(t, sr.Result))
	}
	if len(streamed) != len(queries) {
		t.Fatalf("stream delivered %d results for %d queries", len(streamed), len(queries))
	}
	out["Stream"] = join(streamed...)

	// POST /search: compare the canonical HTTP response bodies.
	ts := httptest.NewServer(NewHTTPHandler(cl))
	var http [][]byte
	for _, q := range queries {
		resp, body := postJSON(t, ts.URL+"/search", map[string]any{
			"id":       q.ID(),
			"residues": q.String(),
			"top_k":    confTopK(rep),
			"align":    rep.Alignments,
			"evalue":   rep.EValues,
		})
		if resp.StatusCode != 200 {
			t.Fatalf("POST /search: status %d: %s", resp.StatusCode, body)
		}
		var sr SearchJSON
		if err := json.Unmarshal(body, &sr); err != nil {
			t.Fatalf("POST /search body: %v", err)
		}
		sr.WallSeconds = 0
		raw, err := json.Marshal(&sr)
		if err != nil {
			t.Fatal(err)
		}
		http = append(http, raw)
	}
	ts.Close()
	out["HTTP"] = join(http...)

	cl.CloseNow()
	return out
}

// confTopK mirrors what the HTTP layer would resolve for the library-side
// report, so both surfaces request the same K.
func confTopK(rep ReportOptions) int {
	if rep.TopK > 0 {
		return rep.TopK
	}
	return defaultReportHits
}

// TestConformanceFASTAvsIndex is the harness table: every kernel variant
// (including both 8-bit ladder forms), the three distributions and the
// reporting phases, each asserted byte-identical between the FASTA load
// path and the .swdb load path on all five entry points.
func TestConformanceFASTAvsIndex(t *testing.T) {
	fastaPath, swdbPath, queries := confSetup(t)

	type confCase struct {
		name string
		opts ClusterOptions
		rep  ReportOptions
	}
	cases := []confCase{
		{"scalar-QP", ClusterOptions{Options: Options{Variant: VariantNoVecQP}}, ReportOptions{TopK: 5}},
		{"scalar-SP", ClusterOptions{Options: Options{Variant: VariantNoVecSP}}, ReportOptions{TopK: 5}},
		{"simd-QP", ClusterOptions{Options: Options{Variant: VariantGuidedQP}}, ReportOptions{TopK: 5}},
		{"simd-SP", ClusterOptions{Options: Options{Variant: VariantGuidedSP}}, ReportOptions{TopK: 5}},
		{"intrinsic-QP", ClusterOptions{Options: Options{Variant: VariantIntrinsicQP}}, ReportOptions{TopK: 5}},
		{"intrinsic-SP", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP}}, ReportOptions{TopK: 5}},
		{"ladder-QP-8bit", ClusterOptions{Options: Options{Variant: VariantIntrinsicQP8}}, ReportOptions{TopK: 5}},
		{"ladder-SP-8bit", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP8}}, ReportOptions{TopK: 5}},
		{"dynamic-aligned", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP}, Dist: "dynamic"},
			ReportOptions{TopK: 5, Alignments: true}},
		{"guided-evalue", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP}, Dist: "guided"},
			ReportOptions{TopK: 5, Alignments: true, EValues: true}},
		{"ladder-striped-intra", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP8, IntraKernel: "striped"}, Dist: "dynamic"},
			ReportOptions{TopK: 5}},
		{"three-device", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP}, Devices: []DeviceKind{DeviceXeon, DevicePhi, DevicePhi}},
			ReportOptions{TopK: 5}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results := make(map[string]map[string][]byte, 2)
			for _, load := range []struct{ kind, path string }{
				{"fasta", fastaPath},
				{"swdb", swdbPath},
			} {
				db, err := LoadDatabaseFile(load.path)
				if err != nil {
					t.Fatalf("%s: %v", load.kind, err)
				}
				if db.Len() != confDBSeqs {
					t.Fatalf("%s: %d sequences, want %d", load.kind, db.Len(), confDBSeqs)
				}
				cl, err := NewCluster(db, tc.opts)
				if err != nil {
					t.Fatalf("%s: %v", load.kind, err)
				}
				results[load.kind] = confEntryPoints(t, cl, queries, tc.rep)
			}
			for _, entry := range []string{"Search", "SearchBatch", "SearchScheduled", "Stream", "HTTP"} {
				f, s := results["fasta"][entry], results["swdb"][entry]
				if f == nil || s == nil {
					t.Fatalf("%s: missing surface output", entry)
				}
				if !bytes.Equal(f, s) {
					t.Errorf("%s: FASTA and swdb results diverge\n--- fasta ---\n%s\n--- swdb ---\n%s",
						entry, truncate(f), truncate(s))
				}
			}
		})
	}
}

// TestConformanceNativeVsPortable is the cross-backend leg of the same
// harness: on hosts where internal/vec selected the native AVX2 backend,
// every result served off the native column kernels must be byte-identical
// to the same search with the portable pure-Go loops forced — across the
// plain, 8-bit-ladder and full-reporting variants, on all five entry
// points. Skipped (vacuous) where the portable backend is the only one.
func TestConformanceNativeVsPortable(t *testing.T) {
	if !vec.Native() {
		t.Skipf("vec backend is %q; native vs portable conformance is vacuous", vec.Backend())
	}
	fastaPath, _, queries := confSetup(t)

	cases := []struct {
		name string
		opts ClusterOptions
		rep  ReportOptions
	}{
		{"intrinsic-SP", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP}}, ReportOptions{TopK: 5}},
		{"intrinsic-QP", ClusterOptions{Options: Options{Variant: VariantIntrinsicQP}}, ReportOptions{TopK: 5}},
		{"simd-SP", ClusterOptions{Options: Options{Variant: VariantGuidedSP}}, ReportOptions{TopK: 5}},
		{"ladder-SP-8bit", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP8}}, ReportOptions{TopK: 5}},
		{"ladder-QP-8bit", ClusterOptions{Options: Options{Variant: VariantIntrinsicQP8}}, ReportOptions{TopK: 5}},
		{"aligned-evalue", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP}, Dist: "dynamic"},
			ReportOptions{TopK: 5, Alignments: true, EValues: true}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results := make(map[string]map[string][]byte, 2)
			for _, backend := range []string{"native", "portable"} {
				if backend == "portable" {
					prev := vec.ForcePortable(true)
					defer vec.ForcePortable(prev)
				}
				db, err := LoadDatabaseFile(fastaPath)
				if err != nil {
					t.Fatalf("%s: %v", backend, err)
				}
				cl, err := NewCluster(db, tc.opts)
				if err != nil {
					t.Fatalf("%s: %v", backend, err)
				}
				results[backend] = confEntryPoints(t, cl, queries, tc.rep)
			}
			for _, entry := range []string{"Search", "SearchBatch", "SearchScheduled", "Stream", "HTTP"} {
				n, p := results["native"][entry], results["portable"][entry]
				if n == nil || p == nil {
					t.Fatalf("%s: missing surface output", entry)
				}
				if !bytes.Equal(n, p) {
					t.Errorf("%s: native and portable results diverge\n--- native ---\n%s\n--- portable ---\n%s",
						entry, truncate(n), truncate(p))
				}
			}
		})
	}
}

// confDNASetup mirrors confSetup for the nucleotide alphabet: a seeded
// synthetic DNA corpus (datagen only emits protein) written as FASTA and
// as a .swdb index, plus a planted-fragment query and an unrelated one.
func confDNASetup(t *testing.T) (fastaPath, swdbPath string, queries []Sequence) {
	t.Helper()
	dir := t.TempDir()
	rng := rand.New(rand.NewSource(7744))
	const bases = "ACGT"
	randDNA := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = bases[rng.Intn(4)]
		}
		return string(b)
	}
	seqs := make([]Sequence, confDBSeqs)
	for i := range seqs {
		seqs[i] = NewDNASequence(fmt.Sprintf("cd%02d", i), randDNA(60+rng.Intn(240)))
	}
	// A couple of soft-masked and ambiguous subjects keep the encoder's
	// lowercase and N paths inside the conformance surface.
	low := []byte(seqs[3].String())
	for i := 10; i < len(low) && i < 40; i++ {
		low[i] += 'a' - 'A'
	}
	seqs[3] = NewDNASequence(seqs[3].ID(), string(low))
	amb := []byte(seqs[9].String())
	amb[5], amb[15], amb[25] = 'N', 'R', 'Y'
	seqs[9] = NewDNASequence(seqs[9].ID(), string(amb))

	fastaPath = filepath.Join(dir, "conf_dna.fasta")
	if err := WriteFASTAFile(fastaPath, seqs); err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(seqs)
	if err != nil {
		t.Fatal(err)
	}
	swdbPath = filepath.Join(dir, "conf_dna.swdb")
	if err := WriteIndexFile(swdbPath, db); err != nil {
		t.Fatal(err)
	}
	donor := seqs[confDBSeqs/2].String()
	if len(donor) > 64 {
		donor = donor[:64]
	}
	queries = []Sequence{
		NewDNASequence("planted", donor),
		NewDNASequence("random", randDNA(72)),
	}
	return fastaPath, swdbPath, queries
}

// TestConformanceDNAFASTAvsIndex extends the harness to the DNA alphabet:
// a nucleotide FASTA parsed under IUPAC-DNA and the .swdb built from it
// (which records the alphabet in its header) must be indistinguishable on
// every entry point, under the NUC match/mismatch matrix the cluster
// selects by default for DNA databases.
func TestConformanceDNAFASTAvsIndex(t *testing.T) {
	fastaPath, swdbPath, queries := confDNASetup(t)

	cases := []struct {
		name string
		opts ClusterOptions
		rep  ReportOptions
	}{
		{"scalar-SP", ClusterOptions{Options: Options{Variant: VariantNoVecSP}}, ReportOptions{TopK: 5}},
		{"intrinsic-SP", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP}}, ReportOptions{TopK: 5}},
		{"intrinsic-QP", ClusterOptions{Options: Options{Variant: VariantIntrinsicQP}}, ReportOptions{TopK: 5}},
		{"ladder-SP-8bit", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP8}}, ReportOptions{TopK: 5}},
		{"dynamic-aligned-evalue", ClusterOptions{Options: Options{Variant: VariantIntrinsicSP}, Dist: "dynamic"},
			ReportOptions{TopK: 5, Alignments: true, EValues: true}},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			results := make(map[string]map[string][]byte, 2)
			for _, load := range []struct{ kind, path string }{
				{"fasta", fastaPath},
				{"swdb", swdbPath},
			} {
				// LoadDNADatabaseFile forces the DNA alphabet for the FASTA
				// text; the .swdb path must recover it from the header alone.
				var (
					db  *Database
					err error
				)
				if load.kind == "fasta" {
					db, err = LoadDNADatabaseFile(load.path)
				} else {
					db, err = LoadDatabaseFile(load.path)
				}
				if err != nil {
					t.Fatalf("%s: %v", load.kind, err)
				}
				if db.Alphabet() != "dna" {
					t.Fatalf("%s: alphabet %q, want dna", load.kind, db.Alphabet())
				}
				cl, err := NewCluster(db, tc.opts)
				if err != nil {
					t.Fatalf("%s: %v", load.kind, err)
				}
				results[load.kind] = confEntryPoints(t, cl, queries, tc.rep)
			}
			for _, entry := range []string{"Search", "SearchBatch", "SearchScheduled", "Stream", "HTTP"} {
				f, s := results["fasta"][entry], results["swdb"][entry]
				if f == nil || s == nil {
					t.Fatalf("%s: missing surface output", entry)
				}
				if !bytes.Equal(f, s) {
					t.Errorf("%s: FASTA and swdb results diverge\n--- fasta ---\n%s\n--- swdb ---\n%s",
						entry, truncate(f), truncate(s))
				}
			}
		})
	}
}

func truncate(b []byte) string {
	const lim = 1200
	if len(b) <= lim {
		return string(b)
	}
	return fmt.Sprintf("%s... (%d bytes)", b[:lim], len(b))
}
