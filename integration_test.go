package heterosw

// Cross-module integration tests: full pipelines through the public API,
// persisting data through FASTA, comparing engines against the pairwise
// oracle, and exercising every device/variant/policy combination end to
// end on one workload.

import (
	"math/rand"
	"path/filepath"
	"testing"
)

// TestIntegrationFullPipeline runs the complete user journey: generate ->
// persist -> reload -> search on both devices -> heterogeneous search ->
// significance -> alignment of the top hit.
func TestIntegrationFullPipeline(t *testing.T) {
	dir := t.TempDir()
	dbPath := filepath.Join(dir, "db.fasta")
	qPath := filepath.Join(dir, "q.fasta")

	orig, queries := SyntheticSwissProt(0.001, true)
	seqs := make([]Sequence, orig.Len())
	for i := range seqs {
		seqs[i] = orig.Seq(i)
	}
	if err := WriteFASTAFile(dbPath, seqs); err != nil {
		t.Fatal(err)
	}
	if err := WriteFASTAFile(qPath, queries); err != nil {
		t.Fatal(err)
	}

	loadedSeqs, err := ReadFASTAFile(dbPath)
	if err != nil {
		t.Fatal(err)
	}
	db, err := NewDatabase(loadedSeqs)
	if err != nil {
		t.Fatal(err)
	}
	loadedQs, err := ReadFASTAFile(qPath)
	if err != nil {
		t.Fatal(err)
	}
	query := loadedQs[3] // 375 aa

	xeon, err := db.Search(query, Options{TopK: 10})
	if err != nil {
		t.Fatal(err)
	}
	phi, err := db.Search(query, Options{Device: DevicePhi})
	if err != nil {
		t.Fatal(err)
	}
	het, err := db.SearchHetero(query, HeteroOptions{AutoSplit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range phi.Scores {
		if xeon.Scores[i] != phi.Scores[i] || het.Scores[i] != phi.Scores[i] {
			t.Fatalf("devices disagree at %d: %d / %d / %d",
				i, xeon.Scores[i], phi.Scores[i], het.Scores[i])
		}
	}

	// The planted query survives the FASTA round trip and is its own top
	// hit with an overwhelming E-value.
	if xeon.Hits[0].ID != query.ID() {
		t.Fatalf("top hit %q, want %q", xeon.Hits[0].ID, query.ID())
	}
	sig, err := phi.FitSignificance(0)
	if err != nil {
		t.Fatal(err)
	}
	if e := sig.EValue(xeon.Hits[0].Score); e > 1e-9 {
		t.Fatalf("self-hit EValue %v", e)
	}

	// Pairwise alignment of the top hit is a perfect self-match.
	al, err := Align(query, db.Seq(xeon.Hits[0].Index), AlignOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if al.Score() != xeon.Hits[0].Score {
		t.Fatalf("pairwise score %d != search score %d", al.Score(), xeon.Hits[0].Score)
	}
	if al.Identities() != query.Len() {
		t.Fatalf("self alignment identities %d, want %d", al.Identities(), query.Len())
	}
}

// TestIntegrationConfigurationMatrix cross-checks score invariance across
// the full configuration space on one random workload: every variant,
// device, schedule, blocking mode and intra kernel must agree.
func TestIntegrationConfigurationMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	letters := "ARNDCQEGHILKMFPSTWYV"
	seqs := make([]Sequence, 48)
	for i := range seqs {
		n := rng.Intn(250) + 1
		if i == 7 {
			n = 3200 // exercise long-sequence routing
		}
		buf := make([]byte, n)
		for j := range buf {
			buf[j] = letters[rng.Intn(len(letters))]
		}
		seqs[i] = NewSequence("s", string(buf))
	}
	db, err := NewDatabase(seqs)
	if err != nil {
		t.Fatal(err)
	}
	qb := make([]byte, 90)
	for j := range qb {
		qb[j] = letters[rng.Intn(len(qb))%20]
	}
	query := NewSequence("q", string(qb))

	var want []int
	check := func(label string, opt Options) {
		t.Helper()
		res, err := db.Search(query, opt)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if want == nil {
			want = res.Scores
			return
		}
		for i := range want {
			if res.Scores[i] != want[i] {
				t.Fatalf("%s: score %d = %d, want %d", label, i, res.Scores[i], want[i])
			}
		}
	}
	for _, v := range Variants() {
		for _, dev := range []DeviceKind{DeviceXeon, DevicePhi} {
			for _, sched := range []string{"static", "dynamic", "guided"} {
				check(v+"/"+string(dev)+"/"+sched, Options{Variant: v, Device: dev, Schedule: sched})
			}
		}
	}
	check("striped-intra", Options{IntraKernel: "striped"})
	check("no-blocking", Options{NoBlocking: true})
	check("block-rows-17", Options{BlockRows: 17})
	check("no-routing", Options{LongSeqThreshold: -1})
	check("pam250-override-back", Options{}) // same defaults, sanity
}
