package heterosw

import (
	"fmt"
	"io"

	"heterosw/internal/alphabet"
	"heterosw/internal/datagen"
	"heterosw/internal/sequence"
)

// Sequence is an immutable biological sequence, protein or DNA. The zero
// value is an empty protein sequence; construct real ones with
// NewSequence, NewDNASequence, ReadFASTA or the synthetic generators.
type Sequence struct {
	impl *sequence.Sequence
}

// NewSequence builds a protein sequence from an identifier and ASCII
// residues. Letters outside the 24-letter protein alphabet are stored as
// the unknown residue X.
func NewSequence(id, residues string) Sequence {
	return Sequence{impl: sequence.FromString(id, residues)}
}

// NewDNASequence builds a nucleotide sequence over the 15-letter IUPAC DNA
// alphabet. Lowercase (soft-masked) bases encode case-insensitively, U is
// accepted as T, and any other unrecognised letter is stored as the
// unknown base N.
func NewDNASequence(id, residues string) Sequence {
	return Sequence{impl: sequence.FromStringAlpha(id, residues, alphabet.DNA)}
}

// Alphabet returns the name of the alphabet the sequence is encoded
// under: "protein" or "dna".
func (s Sequence) Alphabet() string {
	if s.impl == nil {
		return alphabet.Protein.Name()
	}
	return s.impl.Alphabet().Name()
}

// ID returns the sequence identifier.
func (s Sequence) ID() string {
	if s.impl == nil {
		return ""
	}
	return s.impl.ID
}

// Description returns the FASTA description, possibly empty.
func (s Sequence) Description() string {
	if s.impl == nil {
		return ""
	}
	return s.impl.Desc
}

// Len returns the residue count.
func (s Sequence) Len() int {
	if s.impl == nil {
		return 0
	}
	return s.impl.Len()
}

// String renders the residues as ASCII letters.
func (s Sequence) String() string {
	if s.impl == nil {
		return ""
	}
	return s.impl.String()
}

// Slice returns the subsequence [from, to) sharing underlying storage.
func (s Sequence) Slice(from, to int) Sequence {
	return Sequence{impl: s.impl.Slice(from, to)}
}

func wrapSeqs(in []*sequence.Sequence) []Sequence {
	out := make([]Sequence, len(in))
	for i, s := range in {
		out[i] = Sequence{impl: s}
	}
	return out
}

func unwrapSeqs(in []Sequence) ([]*sequence.Sequence, error) {
	out := make([]*sequence.Sequence, len(in))
	for i, s := range in {
		if s.impl == nil {
			return nil, fmt.Errorf("heterosw: sequence %d is the zero value", i)
		}
		out[i] = s.impl
	}
	return out, nil
}

// ReadFASTA parses all records from a FASTA stream as protein sequences.
func ReadFASTA(r io.Reader) ([]Sequence, error) {
	seqs, err := sequence.ReadFASTA(r)
	if err != nil {
		return nil, err
	}
	return wrapSeqs(seqs), nil
}

// ReadFASTAFile parses all records from a FASTA file as protein sequences.
func ReadFASTAFile(path string) ([]Sequence, error) {
	seqs, err := sequence.ReadFASTAFile(path)
	if err != nil {
		return nil, err
	}
	return wrapSeqs(seqs), nil
}

// ReadDNAFASTA parses all records from a FASTA stream as nucleotide
// sequences under the IUPAC DNA alphabet (see NewDNASequence for the
// letter handling).
func ReadDNAFASTA(r io.Reader) ([]Sequence, error) {
	seqs, err := sequence.ReadFASTAAlpha(r, alphabet.DNA)
	if err != nil {
		return nil, err
	}
	return wrapSeqs(seqs), nil
}

// ReadDNAFASTAFile parses all records from a FASTA file as nucleotide
// sequences.
func ReadDNAFASTAFile(path string) ([]Sequence, error) {
	seqs, err := sequence.ReadFASTAFileAlpha(path, alphabet.DNA)
	if err != nil {
		return nil, err
	}
	return wrapSeqs(seqs), nil
}

// WriteFASTAFile writes sequences to a FASTA file wrapped at 60 columns.
func WriteFASTAFile(path string, seqs []Sequence) error {
	raw, err := unwrapSeqs(seqs)
	if err != nil {
		return err
	}
	return sequence.WriteFASTAFile(path, raw, 60)
}

// SyntheticSwissProt generates the library's stand-in for the paper's
// Swiss-Prot 2013_11 benchmark at the given scale (1.0 = 541,561 sequences;
// 0.01 is a comfortable laptop size). When plantQueries is true the 20
// benchmark query proteins of the paper (lengths 144..5478) are planted
// into the database, mirroring the paper's protocol of drawing queries from
// the database, and returned. The output is deterministic.
func SyntheticSwissProt(scale float64, plantQueries bool) (*Database, []Sequence) {
	seqs := datagen.Generate(datagen.SwissProtConfig(scale))
	var queries []Sequence
	if plantQueries {
		qs := datagen.GenerateQueries(1)
		datagen.PlantQueries(seqs, qs)
		queries = wrapSeqs(qs)
	}
	db, err := NewDatabase(wrapSeqs(seqs))
	if err != nil {
		// Generation cannot produce zero-value sequences.
		panic(err)
	}
	return db, queries
}

// PaperQueryLengths returns the lengths of the paper's 20 benchmark
// queries in ascending order (144..5478).
func PaperQueryLengths() []int {
	specs := datagen.PaperQueries()
	out := make([]int, len(specs))
	for i, s := range specs {
		out[i] = s.Length
	}
	return out
}
