package heterosw

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"time"

	"heterosw/internal/device"
	"heterosw/internal/qsched"
	"heterosw/internal/remote"
	"heterosw/internal/vec"
)

// The HTTP front end exposes a Cluster as a JSON search service — the
// serving shape of the SwissAlign webserver precedent, backed by the
// concurrent micro-batching scheduler so that independent HTTP requests
// coalesce into micro-batches exactly like stream submissions.
//
//	POST /search   {"id": "q1", "residues": "MKWVLA...", "top_k": 10}
//	POST /batch    {"queries": [{...}, ...], "top_k": 10}
//	POST /batch    {"fasta": ">q1\nMKWVLA...\n>q2\n...", "top_k": 10}
//	GET  /healthz
//
// /search and /batch answer with SearchJSON (respectively a BatchJSON
// wrapping one SearchJSON per query, in request order); /healthz serves a
// HealthJSON snapshot of database, roster, scheduler and cache state.
// Disconnected clients abandon only their wait: the computation finishes
// and its result stays in the cluster cache for the next asker.
//
// Queries encode under the database's alphabet (protein or DNA). /search
// additionally accepts "format" ("json" default, or the text formats
// "blast", "sam", "tsv" — the latter two imply align), "translate" (six-
// frame translated search of a DNA query against a protein database) and
// "matrix" (request-scoped substitution matrix text in the NCBI format;
// rejected text answers 400 wrapping ErrBadMatrix). Translated and
// custom-matrix searches bypass the micro-batching scheduler and cache,
// since their results are not interchangeable with the cluster-wide
// configuration's.

// maxRequestBytes bounds an HTTP request body: the longest real protein is
// ~36k residues, so even a generous batch fits comfortably.
const maxRequestBytes = 16 << 20

// maxQueryResidues bounds one query: roughly 2x titin, the longest known
// protein. Without a cap a single request could submit a multi-megabyte
// "query" whose O(query x database) computation cannot be cancelled once
// batched — a trivial denial of service.
const maxQueryResidues = 65536

// maxResponseHits bounds top_k: the full score list of a half-million-
// sequence database has no place in a JSON response, whatever the request
// says.
const maxResponseHits = 10000

// maxAlignHits caps top_k when align is requested, mirroring the
// library-level MaxAlignHits cap enforced by Cluster.checkReport.
const maxAlignHits = MaxAlignHits

// defaultResponseHits caps the hits serialised per query when a request
// does not set top_k; the full score list of a half-million-sequence
// database has no place in a JSON response.
const defaultResponseHits = 10

// QueryJSON is one query in a /search or /batch request.
type QueryJSON struct {
	// ID labels the query in the response (optional).
	ID string `json:"id"`
	// Residues is the ASCII protein sequence; letters outside the
	// 24-letter alphabet encode as X.
	Residues string `json:"residues"`
}

// HitJSON is one database match in a response.
type HitJSON struct {
	// Index is the subject's position in the database; ID its identifier;
	// Score the optimal Smith-Waterman score.
	Index int    `json:"index"`
	ID    string `json:"id"`
	Score int    `json:"score"`
	// Frame is the winning reading frame (+1..+3, -1..-3) of a translated
	// search; absent for direct searches.
	Frame int `json:"frame,omitempty"`
	// Alignment is the traceback detail; present only when the request
	// set align.
	Alignment *AlignmentJSON `json:"alignment,omitempty"`
	// BitScore and EValue are present only when the request set evalue.
	BitScore *float64 `json:"bit_score,omitempty"`
	EValue   *float64 `json:"evalue,omitempty"`
}

// AlignmentJSON is the phase-two traceback detail of one hit.
type AlignmentJSON struct {
	// QueryStart/QueryEnd and SubjectStart/SubjectEnd delimit the aligned
	// segments as half-open residue ranges.
	QueryStart   int `json:"query_start"`
	QueryEnd     int `json:"query_end"`
	SubjectStart int `json:"subject_start"`
	SubjectEnd   int `json:"subject_end"`
	// QueryDNAStart/QueryDNAEnd delimit, for translated searches, the
	// half-open nucleotide range of the DNA query (forward strand) the
	// aligned frame segment came from; absent for direct searches.
	QueryDNAStart int `json:"query_dna_start,omitempty"`
	QueryDNAEnd   int `json:"query_dna_end,omitempty"`
	// CIGAR is the alignment path ("12M2D5M"); Identities counts
	// exactly-matching columns out of Columns total.
	CIGAR      string `json:"cigar"`
	Identities int    `json:"identities"`
	Columns    int    `json:"columns"`
}

// SearchJSON is the /search response and the per-query element of /batch.
type SearchJSON struct {
	ID string `json:"id,omitempty"`
	// Hits is sorted by descending score, truncated to the request's
	// top_k (10 when unset).
	Hits []HitJSON `json:"hits"`
	// Significance summarises the fitted Gumbel null model when the
	// request set evalue.
	Significance string `json:"significance,omitempty"`
	// Cells is the dynamic-programming cell count; SimSeconds and
	// SimGCUPS the device-model timing; WallSeconds the real host time of
	// the search that produced this result (shared by every query of its
	// micro-batch era and 0 for pure cache hits' wait).
	Cells       int64   `json:"cells"`
	SimSeconds  float64 `json:"sim_seconds"`
	SimGCUPS    float64 `json:"sim_gcups"`
	WallSeconds float64 `json:"wall_seconds"`
}

// BatchJSON is the /batch response.
type BatchJSON struct {
	Results []SearchJSON `json:"results"`
}

// BackendJSON is one roster entry of /healthz.
type BackendJSON struct {
	Name       string  `json:"name"`
	Device     string  `json:"device"`
	Grants     int64   `json:"grants"`
	Residues   int64   `json:"residues"`
	SimSeconds float64 `json:"sim_seconds"`
	Tracebacks int64   `json:"tracebacks"`
}

// HealthJSON is the /healthz response. Status is "ok", or "degraded" on
// a distributed coordinator with at least one shard down to zero live
// replicas — the signal a load balancer rotates on while the shard still
// answers retryable 503s.
type HealthJSON struct {
	Status        string          `json:"status"`
	Sequences     int             `json:"sequences"`
	Residues      int64           `json:"residues"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Queries       int64           `json:"queries"`
	VecBackend    vec.BackendInfo `json:"vec_backend"`
	Backends      []BackendJSON   `json:"backends"`
	Scheduler     struct {
		Submitted      int64 `json:"submitted"`
		Batches        int64 `json:"batches"`
		BatchedQueries int64 `json:"batched_queries"`
		Joined         int64 `json:"joined"`
		CacheHits      int64 `json:"cache_hits"`
	} `json:"scheduler"`
	Cache struct {
		Hits    int64 `json:"hits"`
		Misses  int64 `json:"misses"`
		Entries int   `json:"entries"`
	} `json:"cache"`
	// Topology is the live-topology snapshot of a distributed
	// coordinator — per-node health states, probe latency quantiles,
	// failure streaks and per-shard replica routing; absent on a local
	// cluster.
	Topology *TopologyInfo `json:"topology,omitempty"`
}

// errorJSON is the error response body.
type errorJSON struct {
	Error string `json:"error"`
}

type server struct {
	c     *Cluster
	start time.Time
}

// NewHTTPHandler wraps a cluster in the JSON search API served by
// cmd/swserve. Every /search and /batch request is routed through the
// cluster's serving scheduler (SearchScheduled), so concurrent requests
// coalesce into micro-batches, identical in-flight queries share one
// execution and repeated queries hit the LRU cache.
func NewHTTPHandler(c *Cluster) http.Handler {
	s := &server{c: c, start: time.Now()}
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/batch", s.handleBatch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/admin/reload", s.handleReload)
	mux.HandleFunc("/admin/probe", s.handleProbe)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// The client may be gone; nothing useful to do with the error.
	_ = enc.Encode(v)
}

// writeError is the central error -> HTTP response mapper: the one place
// allowed to render err.Error() into a body, so wire formats and status
// mapping stay consistent across handlers.
//
//sw:errmapper
func writeError(w http.ResponseWriter, status int, err error) {
	writeJSON(w, status, errorJSON{Error: err.Error()})
}

// decodeBody parses a JSON request body into v with a size cap.
func decodeBody(w http.ResponseWriter, r *http.Request, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxRequestBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	return dec.Decode(v)
}

// decodeStatus maps a body-decoding failure to its status: an oversize
// body is 413, anything else malformed is 400.
func decodeStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// reportFor validates the response-shaping fields shared by /search and
// /batch and resolves them into the library's ReportOptions. topK
// defaults to defaultResponseHits; score-only requests resolve to the
// zero ReportOptions so they keep sharing one cache entry across top_k
// values (trimming happens at serialisation).
func reportFor(topK int, align, evalue bool) (ReportOptions, int, error) {
	switch {
	case topK < 0:
		return ReportOptions{}, 0, fmt.Errorf("negative top_k %d", topK)
	case topK > maxResponseHits:
		return ReportOptions{}, 0, fmt.Errorf("top_k %d exceeds the %d limit", topK, maxResponseHits)
	case topK == 0:
		topK = defaultResponseHits
	}
	if !align && !evalue {
		return ReportOptions{}, topK, nil
	}
	if align && topK > maxAlignHits {
		return ReportOptions{}, 0, fmt.Errorf("top_k %d exceeds the %d limit for aligned reports", topK, maxAlignHits)
	}
	return ReportOptions{Alignments: align, EValues: evalue, TopK: topK}, topK, nil
}

// toQuery validates one request query, encoding it under the named
// alphabet ("dna" or protein otherwise).
func toQuery(q QueryJSON, pos, alpha string) (Sequence, error) {
	if q.Residues == "" {
		return Sequence{}, fmt.Errorf("%s: empty residues", pos)
	}
	if len(q.Residues) > maxQueryResidues {
		return Sequence{}, fmt.Errorf("%s: %d residues exceeds the %d limit", pos, len(q.Residues), maxQueryResidues)
	}
	id := q.ID
	if id == "" {
		id = "query"
	}
	if alpha == "dna" {
		return NewDNASequence(id, q.Residues), nil
	}
	return NewSequence(id, q.Residues), nil
}

// toSearchJSON trims a result for transport, carrying any phase-two
// decorations along.
func toSearchJSON(id string, res *ClusterResult, topK int) SearchJSON {
	if topK <= 0 {
		topK = defaultResponseHits
	}
	n := topK
	if n > len(res.Hits) {
		n = len(res.Hits)
	}
	out := SearchJSON{
		ID:          id,
		Hits:        make([]HitJSON, n),
		Cells:       res.Cells,
		SimSeconds:  res.SimSeconds,
		SimGCUPS:    res.SimGCUPS,
		WallSeconds: res.WallSeconds,
	}
	if res.Significance != nil {
		out.Significance = res.Significance.String()
	}
	for i := 0; i < n; i++ {
		h := res.Hits[i]
		hj := HitJSON{Index: h.Index, ID: h.ID, Score: h.Score, Frame: h.Frame}
		if h.Alignment != nil {
			a := h.Alignment
			hj.Alignment = &AlignmentJSON{
				QueryStart:    a.QueryStart,
				QueryEnd:      a.QueryEnd,
				SubjectStart:  a.SubjectStart,
				SubjectEnd:    a.SubjectEnd,
				QueryDNAStart: a.QueryDNAStart,
				QueryDNAEnd:   a.QueryDNAEnd,
				CIGAR:         a.CIGAR,
				Identities:    a.Identities,
				Columns:       a.Columns,
			}
		}
		if h.Significance != nil {
			bits, ev := h.Significance.BitScore, h.Significance.EValue
			hj.BitScore, hj.EValue = &bits, &ev
		}
		out.Hits[i] = hj
	}
	return out
}

// searchRequest is the /search body: one query plus response shaping.
// align enables the traceback phase (coordinates, CIGAR, identities per
// hit); evalue the significance fit (bit score and E-value per hit);
// format selects the response rendering ("json" default, or the text
// formats "blast", "sam", "tsv", which imply align); translate runs the
// six-frame translated search; matrix supplies request-scoped
// substitution-matrix text.
type searchRequest struct {
	QueryJSON
	TopK      int    `json:"top_k"`
	Align     bool   `json:"align"`
	EValue    bool   `json:"evalue"`
	Format    string `json:"format"`
	Translate bool   `json:"translate"`
	Matrix    string `json:"matrix"`
}

func (s *server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req searchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("invalid request: %w", err))
		return
	}
	format := req.Format
	if format == "" {
		format = "json"
	}
	switch format {
	case "json", "blast", "sam", "tsv":
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("unknown format %q (have json, blast, sam, tsv)", req.Format))
		return
	}
	// A translated query is DNA whatever the database holds; otherwise the
	// query encodes under the database's own alphabet.
	alpha := s.c.db.Alphabet()
	if req.Translate {
		alpha = "dna"
	}
	q, err := toQuery(req.QueryJSON, "query", alpha)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// The SAM and TSV renderings only carry hits with tracebacks.
	align := req.Align || format == "sam" || format == "tsv"
	rep, topK, err := reportFor(req.TopK, align, req.EValue)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	var res *ClusterResult
	switch {
	case req.Translate && req.Matrix != "":
		res, err = s.c.SearchTranslatedMatrixContext(r.Context(), q, req.Matrix, rep)
	case req.Translate:
		res, err = s.c.SearchTranslatedContext(r.Context(), q, rep)
	case req.Matrix != "":
		res, err = s.c.SearchMatrixContext(r.Context(), q, req.Matrix, rep)
	default:
		res, err = s.c.SearchScheduled(r.Context(), q, rep)
	}
	if err != nil {
		writeError(w, searchStatus(r, err), err)
		return
	}
	if format == "json" {
		writeJSON(w, http.StatusOK, toSearchJSON(req.ID, res, topK))
		return
	}
	// A score-only result (cached, possibly shared) can carry more hits
	// than this request's top_k: render a trimmed shallow copy.
	if len(res.Hits) > topK {
		trimmed := *res
		trimmed.Hits = res.Hits[:topK]
		res = &trimmed
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	// The client may be gone; nothing useful to do with the error.
	_ = WriteFormat(w, format, q, s.c.db, res, 60)
}

// batchRequest is the /batch body: queries plus response shaping; align
// and evalue apply to every query of the batch. fasta supplies queries as
// one multi-record FASTA document instead of (or in addition to) the
// queries array; its records are appended after the explicit queries.
type batchRequest struct {
	Queries []QueryJSON `json:"queries"`
	FASTA   string      `json:"fasta"`
	TopK    int         `json:"top_k"`
	Align   bool        `json:"align"`
	EValue  bool        `json:"evalue"`
}

func (s *server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req batchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("invalid request: %w", err))
		return
	}
	if len(req.Queries) == 0 && req.FASTA == "" {
		writeError(w, http.StatusBadRequest, errors.New("empty batch"))
		return
	}
	rep, topK, err := reportFor(req.TopK, req.Align, req.EValue)
	if err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	// Reject unsatisfiable reports before anything reaches the scheduler,
	// so one bad batch cannot poison its coalesced neighbours.
	if err := s.c.checkReport(rep); err != nil {
		writeError(w, searchStatus(r, err), err)
		return
	}
	alpha := s.c.db.Alphabet()
	if req.FASTA != "" {
		recs, ferr := fastaQueries(req.FASTA, alpha)
		if ferr != nil {
			writeError(w, http.StatusBadRequest, ferr)
			return
		}
		req.Queries = append(req.Queries, recs...)
	}
	queries := make([]Sequence, len(req.Queries))
	for i, qj := range req.Queries {
		q, err := toQuery(qj, fmt.Sprintf("query %d", i), alpha)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		queries[i] = q
	}
	// Submit every query to the serving scheduler up front — tickets are
	// futures, so this spawns no per-query goroutines however large the
	// batch — then gather in request order. The submissions coalesce into
	// micro-batches alongside concurrent requests.
	sched, err := s.c.servingScheduler()
	if err != nil {
		writeError(w, searchStatus(r, err), err)
		return
	}
	tickets := make([]*qsched.Ticket[*ClusterResult], len(queries))
	for i, q := range queries {
		t, err := sched.Submit(reportQuery{seq: q, rep: rep})
		if err != nil {
			if errors.Is(err, qsched.ErrClosed) {
				err = ErrClusterClosed
			}
			writeError(w, searchStatus(r, err), fmt.Errorf("query %d: %w", i, err))
			return
		}
		tickets[i] = t
	}
	out := BatchJSON{Results: make([]SearchJSON, len(queries))}
	for i, t := range tickets {
		res, err := t.Wait(r.Context())
		if err != nil {
			// Wait surfaces scheduler teardown as qsched.ErrClosed; map it to
			// the cluster-level sentinel so searchStatus answers the retryable
			// 503, exactly as the Submit path above does.
			if errors.Is(err, qsched.ErrClosed) {
				err = ErrClusterClosed
			}
			writeError(w, searchStatus(r, err), fmt.Errorf("query %d: %w", i, err))
			return
		}
		out.Results[i] = toSearchJSON(req.Queries[i].ID, res, topK)
	}
	writeJSON(w, http.StatusOK, out)
}

// fastaQueries parses a /batch request's fasta field into per-record
// queries under the database's alphabet. Records re-render to canonical
// residue letters, so a FASTA batch shares cache entries with the same
// queries submitted inline.
func fastaQueries(text, alpha string) ([]QueryJSON, error) {
	var (
		seqs []Sequence
		err  error
	)
	if alpha == "dna" {
		seqs, err = ReadDNAFASTA(strings.NewReader(text))
	} else {
		seqs, err = ReadFASTA(strings.NewReader(text))
	}
	if err != nil {
		return nil, fmt.Errorf("fasta: %w", err)
	}
	if len(seqs) == 0 {
		return nil, errors.New("fasta: no records")
	}
	out := make([]QueryJSON, len(seqs))
	for i, s := range seqs {
		out[i] = QueryJSON{ID: s.ID(), Residues: s.String()}
	}
	return out, nil
}

// searchStatus maps a search failure to an HTTP status: a draining
// cluster gets the retryable 503, a disconnected or timed-out client a
// request-timeout code (unsendable when truly gone, but meaningful under
// a deadline), an E-value request the database cannot satisfy the
// non-retryable 422, anything else a server-side failure. Both /search
// and /batch route every failure through here so the two endpoints agree.
//
// Order matters twice over. A cluster teardown cancels in-flight waits
// through a context too, and under CloseNow the request context is often
// also dead by the time the handler observes the failure — if the bare
// "is the request context dead?" test ran first, a teardown would
// masquerade as 408 and retry-safe clients would stop retrying exactly
// when retrying is correct; so ErrClusterClosed wins. And 408 is only
// truthful when the failure actually came from the client's own
// disconnect or deadline: the error must wrap the request context's
// error, not merely coincide with a dead context. A real server-side
// failure that races a client disconnect stays a 5xx — masking it as 408
// would tell retrying clients the request was never worth finishing.
func searchStatus(r *http.Request, err error) int {
	if errors.Is(err, ErrClusterClosed) {
		return http.StatusServiceUnavailable
	}
	// A coordinator whose shard lost every live replica — or whose node
	// answered its own retryable 503 through the retry budget — passes the
	// retryable condition to its caller: the prober refills the replica
	// set when a node recovers, so clients should retry here too.
	var se *remote.StatusError
	if errors.Is(err, remote.ErrNoReplicas) ||
		(errors.As(err, &se) && se.Code == http.StatusServiceUnavailable) {
		return http.StatusServiceUnavailable
	}
	if rerr := r.Context().Err(); rerr != nil && errors.Is(err, rerr) {
		return http.StatusRequestTimeout
	}
	if errors.Is(err, ErrNoSignificance) {
		return http.StatusUnprocessableEntity
	}
	if errors.Is(err, ErrBadMatrix) {
		// Rejected user-supplied matrix text (bad alphabet line, non-square
		// table, scores outside the 8-bit ladder's range): a client error.
		return http.StatusBadRequest
	}
	if errors.Is(err, ErrTooManyAlignments) {
		// The request-level top_k is pre-validated, but a cluster-wide
		// Options.TopK above the cap still surfaces here; the request
		// cannot succeed on retry.
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	var h HealthJSON
	h.Status = "ok"
	h.Sequences = s.c.db.Len()
	h.Residues = s.c.db.Residues()
	h.UptimeSeconds = time.Since(s.start).Seconds()
	h.VecBackend = device.HostSIMD()
	queries, per := s.c.Totals()
	h.Queries = queries
	h.Backends = make([]BackendJSON, len(per))
	for i, bt := range per {
		h.Backends[i] = BackendJSON{
			Name:       bt.Name,
			Device:     string(bt.Device),
			Grants:     bt.Grants,
			Residues:   bt.Residues,
			SimSeconds: bt.SimSeconds,
			Tracebacks: bt.Tracebacks,
		}
	}
	st := s.c.SchedulerStats()
	h.Scheduler.Submitted = st.Submitted
	h.Scheduler.Batches = st.Batches
	h.Scheduler.BatchedQueries = st.BatchedQueries
	h.Scheduler.Joined = st.Joined
	h.Scheduler.CacheHits = st.CacheHits
	hits, misses, entries := s.c.CacheStats()
	h.Cache.Hits = hits
	h.Cache.Misses = misses
	h.Cache.Entries = entries
	if topo := s.c.Topology(); topo != nil {
		h.Topology = topo
		if topo.Uncovered() {
			h.Status = "degraded"
		}
	}
	writeJSON(w, http.StatusOK, h)
}

// reloadJSON is the /admin/reload success response.
type reloadJSON struct {
	Status     string `json:"status"`
	Generation int    `json:"generation"`
}

// handleReload is POST /admin/reload: re-read the coordinator's manifest
// and swap the serving topology onto the new shard cut (the HTTP twin of
// SIGHUP; see Cluster.ReloadManifest for the all-or-nothing semantics).
// Answers 404 on a non-distributed cluster, 409 when the incoming
// manifest fails validation or leaves a shard unowned — the old topology
// keeps serving in that case, and the body says why.
func (s *server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.c.Topology() == nil {
		writeError(w, http.StatusNotFound, errors.New("not a distributed coordinator"))
		return
	}
	if err := s.c.ReloadManifest(r.Context()); err != nil {
		writeError(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, reloadJSON{Status: "ok", Generation: s.c.Topology().Generation})
}

// handleProbe is POST /admin/probe: run one synchronous health-probe
// sweep over the node roster and answer with the resulting topology
// snapshot — the operator's "re-check now" next to the background
// prober's periodic sweeps.
func (s *server) handleProbe(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	if s.c.Topology() == nil {
		writeError(w, http.StatusNotFound, errors.New("not a distributed coordinator"))
		return
	}
	if err := s.c.ProbeNodes(r.Context()); err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	writeJSON(w, http.StatusOK, s.c.Topology())
}
