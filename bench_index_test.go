package heterosw

import (
	"os"
	"path/filepath"
	"testing"

	"heterosw/internal/datagen"
	"heterosw/internal/sequence"
)

// The startup-cost benchmarks behind the .swdb format: loading the same
// >=10k-sequence corpus from FASTA (parse + encode + length sort) versus
// opening its prebuilt index (mmap + zero-copy slicing). The ratio is the
// amortisation a long-lived server banks on every restart.

// benchCorpusScale yields 10,831 sequences (~3.9M residues), comfortably
// past the 10k-sequence acceptance floor.
const benchCorpusScale = 0.02

// benchCorpusPaths writes the benchmark corpus into the benchmark's own
// temp dir (cleaned up automatically). Rebuilding it per benchmark costs
// well under a second and keeps the package free of leaked temp state.
func benchCorpusPaths(tb testing.TB) (fasta, swdb string, seqs int) {
	tb.Helper()
	dir := tb.TempDir()
	raw := datagen.Generate(datagen.SwissProtConfig(benchCorpusScale))
	fasta = filepath.Join(dir, "bench.fasta")
	if err := sequence.WriteFASTAFile(fasta, raw, 60); err != nil {
		tb.Fatal(err)
	}
	db, err := NewDatabase(wrapSeqs(raw))
	if err != nil {
		tb.Fatal(err)
	}
	swdb = filepath.Join(dir, "bench.swdb")
	if err := WriteIndexFile(swdb, db); err != nil {
		tb.Fatal(err)
	}
	return fasta, swdb, len(raw)
}

// benchLoad measures one load path end to end (file to search-ready,
// sorted database) and reports sequences/second readiness throughput.
func benchLoad(b *testing.B, path string, wantSeqs int) {
	var db *Database
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		db, err = LoadDatabaseFile(path)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if db.Len() != wantSeqs {
		b.Fatalf("loaded %d sequences, want %d", db.Len(), wantSeqs)
	}
	if !db.db.Sorted() {
		b.Fatal("loaded database is not length-sorted")
	}
	perOp := b.Elapsed().Seconds() / float64(b.N)
	if perOp > 0 {
		b.ReportMetric(float64(wantSeqs)/perOp, "seqs/s")
	}
}

// BenchmarkFastaLoad is the legacy startup path: FASTA parse, residue
// encoding and the length sort, paid on every boot.
func BenchmarkFastaLoad(b *testing.B) {
	fasta, _, seqs := benchCorpusPaths(b)
	benchLoad(b, fasta, seqs)
}

// BenchmarkIndexOpen is the .swdb startup path: mmap, checksum
// verification, and zero-copy slice restoration of the presorted order.
// The acceptance evidence for the format is >=10x BenchmarkFastaLoad,
// recorded in the committed benchmark artifact (10.4x at -benchtime=20x;
// ~13x steady state).
func BenchmarkIndexOpen(b *testing.B) {
	_, swdb, seqs := benchCorpusPaths(b)
	benchLoad(b, swdb, seqs)
}

// TestIndexOpenBeatsFastaLoad pins the startup-cost win functionally so a
// regression fails in `go test`, not only in benchmark review. The
// measured ratio is 10-13x on an idle machine but drifts down toward 8x
// under host load (both load paths are allocation- and page-cache-bound,
// and they wobble independently); the floor asserts 5x so an
// order-of-magnitude regression is still caught locally while the assert
// sits well clear of machine noise. On shared CI runners it skips —
// wall-clock ratios there are exactly what the repo's benchjson design
// treats as info-only (the bench-smoke job still records both load
// benchmarks in the artifact every run).
func TestIndexOpenBeatsFastaLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison")
	}
	if os.Getenv("CI") != "" {
		t.Skip("wall-clock ratio on a shared runner; see the bench-smoke artifact")
	}
	res := testing.Benchmark(BenchmarkFastaLoad)
	fastaPerOp := res.T.Seconds() / float64(res.N)
	res = testing.Benchmark(BenchmarkIndexOpen)
	indexPerOp := res.T.Seconds() / float64(res.N)
	ratio := fastaPerOp / indexPerOp
	t.Logf("FASTA %.1fms vs swdb %.1fms per load: %.1fx", fastaPerOp*1e3, indexPerOp*1e3, ratio)
	if ratio < 5 {
		t.Fatalf("index open only %.1fx faster than FASTA load, want the measured 10-13x (floor 5x)", ratio)
	}
}
