package heterosw

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"heterosw/internal/core"
	"heterosw/internal/qsched"
	"heterosw/internal/sequence"
	"heterosw/internal/stats"
	"heterosw/internal/submat"
)

// ErrClusterClosed is returned by the scheduled entry points
// (SearchScheduled and the HTTP front end) after Cluster.CloseNow. Direct
// Search and SearchBatch calls remain usable.
var ErrClusterClosed = errors.New("heterosw: cluster closed")

// ErrNoSignificance is returned when ReportOptions.EValues is requested
// over a database too small or too degenerate to fit the Gumbel null model
// (the fit needs a few dozen database sequences).
var ErrNoSignificance = errors.New("heterosw: significance fit unavailable")

// MaxAlignHits caps how many hits one search call may decorate with
// tracebacks (ReportOptions.Alignments): every aligned hit costs an
// O(query x subject) full-matrix re-alignment, so the aligned report is
// bounded far tighter than the score-only one. The cap is enforced at the
// library boundary — the HTTP front end merely mirrors it — so an
// over-eager ReportOptions.TopK (or a huge cluster-wide Options.TopK)
// fails fast with ErrTooManyAlignments instead of re-aligning an arbitrary
// slice of the database.
const MaxAlignHits = 64

// ErrTooManyAlignments is returned when an aligned report would traceback
// more than MaxAlignHits subjects.
var ErrTooManyAlignments = errors.New("heterosw: aligned report exceeds MaxAlignHits tracebacks")

// ClusterOptions configures a Cluster over a database.
//
// The paper's Algorithm 2 hardcodes one Xeon host and one Xeon Phi and
// names a dynamic distribution strategy as future work; ClusterOptions
// generalises the roster to any number of modelled devices and makes the
// distribution strategy selectable. The scheduling knobs below tune the
// concurrent micro-batching query scheduler behind the streaming and
// serving paths (Stream, SearchScheduled, the swserve HTTP front end).
type ClusterOptions struct {
	// Options carries the shared kernel configuration (variant, matrix,
	// gaps, blocking, schedule). Its Device and Threads fields are
	// ignored: the roster comes from Devices and per-backend threads from
	// Threads below.
	Options
	// Devices is the backend roster, e.g. {DeviceXeon, DevicePhi,
	// DevicePhi}. Empty selects the paper's pair {DeviceXeon, DevicePhi}.
	Devices []DeviceKind
	// Threads optionally sets each backend's simulated thread count
	// (device maximum when 0 or when the slice is shorter than the
	// roster).
	Threads []int
	// Dist selects the workload distribution: "static" (Algorithm 2's
	// residue split, the default), "dynamic" (a device-level work queue
	// of equal-residue chunks) or "guided" (shrinking chunks).
	Dist string
	// Shares pins the static residue fraction per backend; nil derives
	// model-balanced shares from the device cost models (the paper's
	// proposed model-driven strategy). Ignored by dynamic distributions.
	Shares []float64
	// ChunkResidues is the dynamic chunk granularity in residues (0
	// derives a default from the database size and roster).
	ChunkResidues int64

	// MaxInFlight caps the micro-batches a scheduler runs concurrently
	// (default 4). More in-flight batches keep multi-core hosts busy
	// under bursty traffic; 1 serialises batches.
	MaxInFlight int
	// BatchWindow is the micro-batch coalescing window: once batches are
	// in flight, the intake collector waits this long for more
	// submissions before dispatching a partial batch, so backlogs
	// coalesce into fuller batches (default 500µs; negative disables).
	// Dispatch is immediate while the scheduler is idle, so the window
	// adds no latency to an unloaded system.
	BatchWindow time.Duration
	// MaxBatch caps the queries coalesced into one micro-batch
	// (default 32).
	MaxBatch int
	// CacheSize is the capacity, in entries, of the cluster's LRU result
	// cache, shared by every scheduled path so repeated queries are free.
	// Each cached result holds a database-length score list and hit
	// table, so the zero-value default is derived from the database size
	// against a ~512 MB budget (at most 512 entries, at least 8 — about
	// 14 entries on the full 541k-sequence Swiss-Prot). Negative disables
	// caching.
	CacheSize int
}

// Cache sizing when ClusterOptions.CacheSize is zero: a memory budget
// divided by the estimated per-entry cost (scores, hits, IDs — roughly
// cacheBytesPerSeq bytes per database sequence), clamped to
// [minCacheSize, maxCacheSize].
const (
	cacheBudgetBytes = 512 << 20
	cacheBytesPerSeq = 96
	minCacheSize     = 8
	maxCacheSize     = 512
)

func defaultCacheSize(dbLen int) int {
	per := int64(dbLen)*cacheBytesPerSeq + 4096
	n := int(cacheBudgetBytes / per)
	if n > maxCacheSize {
		return maxCacheSize
	}
	if n < minCacheSize {
		return minCacheSize
	}
	return n
}

// BackendReport describes one backend's part in a cluster search.
type BackendReport struct {
	// Name identifies the backend within the roster (the device kind
	// suffixed with its roster position, e.g. "phi#1").
	Name string
	// Device is the backend's device kind.
	Device DeviceKind
	// Share is the realised fraction of database residues the backend
	// processed (static) or was scheduled in simulation (dynamic).
	Share float64
	// Chunks counts the backend's work grants: 1 shard under static
	// distribution, claimed queue chunks under dynamic ones.
	Chunks int
	// SimSeconds is the backend's simulated busy time including PCIe
	// transfers; Threads its simulated thread count (0 if it got no work).
	SimSeconds float64
	Threads    int
}

// ClusterResult reports a cluster search: the merged result plus
// per-backend accounting.
type ClusterResult struct {
	Result
	// Backends has one entry per roster backend, in roster order.
	Backends []BackendReport
	// Significance is the Gumbel null model fitted over the full score
	// distribution when the search requested ReportOptions.EValues; nil
	// otherwise.
	Significance *Significance
}

// ReportOptions selects the optional reporting phases of one search call.
// The zero value is the plain score pass of the paper's step 4: a
// descending score list and nothing else. Report options are part of the
// scheduler cache key, so an aligned result and a score-only result of the
// same query never alias in the cluster's LRU cache.
type ReportOptions struct {
	// Alignments enables reporting phase two: after the vectorised score
	// pass selects the top-K hits, the query is re-aligned against just
	// those K database sequences — fanned out across the cluster roster —
	// and each hit gains coordinates, a CIGAR and identity counts
	// (Hit.Alignment). The traceback phase only ever aligns K sequences,
	// never the full database.
	Alignments bool
	// EValues fits a Gumbel null model over the full score distribution
	// (see Result.FitSignificance) and decorates every reported hit with
	// its bit score and E-value (Hit.Significance); the fitted model is
	// returned as ClusterResult.Significance. Fails with ErrNoSignificance
	// on databases with fewer than a few dozen sequences.
	EValues bool
	// TopK truncates this call's hit list, overriding the cluster-wide
	// Options.TopK for this search only (0 keeps the cluster default).
	// With Alignments set it is K, the number of sequences the traceback
	// phase aligns. When a reporting phase is requested and both TopK and
	// the cluster default are 0, the reported hit list is bounded at
	// defaultReportHits, so every returned hit is decorated and an
	// unbounded search never re-aligns the whole database.
	TopK int
	// EValueTrim is the top fraction of scores excluded from the
	// significance fit as suspected homologs (0 selects the 1% default).
	EValueTrim float64
}

// validate rejects unusable report options.
func (rep ReportOptions) validate() error {
	if rep.TopK < 0 {
		return fmt.Errorf("heterosw: negative report TopK %d", rep.TopK)
	}
	if !(rep.EValueTrim >= 0 && rep.EValueTrim < 0.5) { // rejects NaN too
		return fmt.Errorf("heterosw: report EValueTrim %v outside [0, 0.5)", rep.EValueTrim)
	}
	return nil
}

// key fingerprints the report options for the scheduler cache. The zero
// value maps to the empty string, so score-only traffic keeps the compact
// pre-report cache keys.
func (rep ReportOptions) key() string {
	if rep == (ReportOptions{}) {
		return ""
	}
	return fmt.Sprintf("R:a=%t,e=%t,k=%d,t=%g|", rep.Alignments, rep.EValues, rep.TopK, rep.EValueTrim)
}

// oneReport resolves the optional trailing ReportOptions of the search
// entry points: absent means the zero value, and at most one is accepted.
func oneReport(report []ReportOptions) (ReportOptions, error) {
	switch len(report) {
	case 0:
		return ReportOptions{}, nil
	case 1:
		return report[0], report[0].validate()
	}
	return ReportOptions{}, fmt.Errorf("heterosw: at most one ReportOptions per call")
}

// defaultReportHits bounds the traceback phase when neither the call nor
// the cluster set an explicit top-K: decorating an unbounded hit list
// would re-align the entire database, defeating the two-phase design.
const defaultReportHits = 10

// checkReport rejects report options this cluster can never satisfy —
// before the query reaches the scheduler. An EValues request over a
// too-small database would otherwise fail deterministically inside every
// micro-batch it joins, poisoning the batch and degrading its coalesced
// neighbours to serial per-query retries. (A degenerate zero-variance
// score distribution can still fail inside the fit — only computing the
// scores reveals it — where the scheduler's per-query retry isolates the
// failure to the one query.)
func (c *Cluster) checkReport(rep ReportOptions) error {
	if rep.EValues {
		if err := stats.FitViable(c.db.Len(), rep.EValueTrim); err != nil {
			return fmt.Errorf("%w (%v)", ErrNoSignificance, err)
		}
	}
	if rep.Alignments {
		// The K the traceback phase would actually align: the per-call
		// override, else the cluster-wide truncation, else the default
		// bound — capped by the database itself.
		k := rep.TopK
		if k <= 0 {
			k = c.dopt.Search.TopK
		}
		if k <= 0 {
			k = defaultReportHits
		}
		if k > c.db.Len() {
			k = c.db.Len()
		}
		if k > MaxAlignHits {
			return fmt.Errorf("%w (%d requested, cap %d)", ErrTooManyAlignments, k, MaxAlignHits)
		}
	}
	return nil
}

// reportQuery pairs a query with its report options; it is the unit the
// scheduler batches, dedups and caches.
type reportQuery struct {
	seq Sequence
	rep ReportOptions
}

// engineState is one immutable topology generation: the dispatcher and
// the per-backend roster labels, always read together. See Cluster.eng.
type engineState struct {
	disp  *core.Dispatcher
	kinds []DeviceKind
}

// engine snapshots the cluster's current engine. Callers must hold the
// returned snapshot for the whole operation instead of re-loading.
func (c *Cluster) engine() *engineState { return c.eng.Load() }

// BackendTotals is one backend's cumulative accounting across every search
// the cluster has completed, whichever concurrent batch or stream it
// arrived on.
type BackendTotals struct {
	// Name identifies the backend within the roster; Device is its kind.
	Name   string
	Device DeviceKind
	// Grants counts executed work grants (shards under static, claimed
	// chunks under dynamic distributions); Residues the database residues
	// processed; SimSeconds the accumulated simulated busy time.
	Grants     int64
	Residues   int64
	SimSeconds float64
	// Tracebacks counts the aligned-hit tracebacks the backend has run in
	// reporting phase two (ReportOptions.Alignments).
	Tracebacks int64
}

// Cluster is an N-device search cluster over a Database: the paper's
// Algorithm 2 generalised to a device-count-agnostic dispatcher with
// batched, streaming and scheduled entry points. A Cluster is safe for
// concurrent use; shard splits, chunk partitions and per-backend lane
// packings are cached so repeated and batched queries amortise all
// pre-processing, and the scheduled paths share one LRU result cache so
// repeated queries are free.
type Cluster struct {
	db   *Database
	dopt core.DispatchOptions

	// eng is the cluster's current engine: the dispatcher plus the roster
	// labels its reports carry, bundled so a topology swap replaces both
	// atomically. Every search path snapshots it exactly once and threads
	// the snapshot through scoring, wrapping and decoration — a manifest
	// hot-reload racing an in-flight query can therefore never tear a
	// response or mismatch a result against the wrong roster. Local
	// clusters store it once at construction and never again.
	eng atomic.Pointer[engineState]

	// topo is the live-topology controller of a distributed coordinator
	// (health prober, replica sets, manifest hot-reload); nil for local
	// clusters.
	topo *liveTopology

	schedOpt qsched.Options
	cache    *qsched.Cache[*ClusterResult]
	keyBase  string

	mu sync.Mutex
	// lazy; SearchScheduled and the HTTP front end
	//sw:guardedBy(mu)
	serving *qsched.Scheduler[reportQuery, *ClusterResult]
	// lazy; the Submit/Results/Close compatibility surface
	//sw:guardedBy(mu)
	defStream *Stream
	// Close seen before the default stream existed
	//sw:guardedBy(mu)
	defClosed bool
	// set by CloseNow; scheduled paths refuse new work
	//sw:guardedBy(mu)
	closed bool
}

// NewCluster builds a cluster over the database with the given roster and
// distribution strategy.
func NewCluster(db *Database, opt ClusterOptions) (*Cluster, error) {
	if db == nil {
		return nil, fmt.Errorf("heterosw: nil database")
	}
	kinds := opt.Devices
	if len(kinds) == 0 {
		kinds = []DeviceKind{DeviceXeon, DevicePhi}
	}
	backends := make([]core.Backend, len(kinds))
	for i, k := range kinds {
		m, err := k.model()
		if err != nil {
			return nil, err
		}
		threads := 0
		if i < len(opt.Threads) {
			threads = opt.Threads[i]
		}
		if threads < 0 || threads > m.MaxThreads() {
			return nil, fmt.Errorf("heterosw: backend %d (%s): %d threads exceeds %d",
				i, k, threads, m.MaxThreads())
		}
		backends[i] = core.NewBackend(fmt.Sprintf("%s#%d", k, i), m, threads)
	}
	dist := opt.Dist
	if dist == "" {
		dist = "static"
	}
	d, err := core.ParseDistribution(dist)
	if err != nil {
		return nil, fmt.Errorf("heterosw: %s", err)
	}
	if opt.Shares != nil && len(opt.Shares) != len(kinds) {
		return nil, fmt.Errorf("heterosw: %d shares for %d devices", len(opt.Shares), len(kinds))
	}
	search, err := opt.Options.toCore(db.db.Alphabet())
	if err != nil {
		return nil, err
	}
	disp, err := core.NewDispatcher(db.db, backends)
	if err != nil {
		return nil, err
	}
	cacheSize := opt.CacheSize
	if cacheSize == 0 {
		cacheSize = defaultCacheSize(db.Len())
	}
	c := &Cluster{
		db: db,
		dopt: core.DispatchOptions{
			Search:        search,
			Dist:          d,
			Shares:        opt.Shares,
			ChunkResidues: opt.ChunkResidues,
		},
		schedOpt: qsched.Options{
			MaxBatch:    opt.MaxBatch,
			Window:      opt.BatchWindow,
			MaxInFlight: opt.MaxInFlight,
		},
		cache: qsched.NewCache[*ClusterResult](cacheSize),
	}
	c.eng.Store(&engineState{disp: disp, kinds: kinds})
	// The cache key pairs the query residues with every option that can
	// change a result; within one cluster the options are fixed, so the
	// fingerprint is a constant prefix.
	c.keyBase = fmt.Sprintf("%v|%v|%d|%+v|", c.dopt.Dist, c.dopt.Shares, c.dopt.ChunkResidues, c.dopt.Search)
	return c, nil
}

// Devices returns the cluster's roster.
func (c *Cluster) Devices() []DeviceKind {
	e := c.engine()
	return append([]DeviceKind(nil), e.kinds...)
}

func (c *Cluster) wrap(e *engineState, r *core.ClusterResult) *ClusterResult {
	out := &ClusterResult{
		Result:   *wrapResult(&r.Result),
		Backends: make([]BackendReport, len(r.PerBackend)),
	}
	for i, st := range r.PerBackend {
		out.Backends[i] = BackendReport{
			Name:       st.Name,
			Device:     e.kinds[i],
			Share:      st.Share,
			Chunks:     st.Chunks,
			SimSeconds: st.SimSeconds,
			Threads:    st.Threads,
		}
	}
	return out
}

// Search distributes one query across the cluster's backends and merges
// the score lists — Algorithm 2 with N devices. An optional ReportOptions
// enables the aligned-hit reporting phases: tracebacks over the top-K hits
// and/or an E-value fit over the score distribution. Search bypasses the
// scheduler and cache; serving traffic should prefer SearchScheduled. It
// is the context-free convenience root; cancellable callers use
// SearchContext.
//
//sw:ctxroot
func (c *Cluster) Search(query Sequence, report ...ReportOptions) (*ClusterResult, error) {
	return c.SearchContext(context.Background(), query, report...)
}

// SearchContext is Search with cancellation: ctx is threaded through the
// score pass (checked at query boundaries, carried to remote shard nodes)
// and the reporting phases, so a dead caller aborts traceback decoration
// instead of fanning it out.
func (c *Cluster) SearchContext(ctx context.Context, query Sequence, report ...ReportOptions) (*ClusterResult, error) {
	rep, err := oneReport(report)
	if err != nil {
		return nil, err
	}
	if err := c.checkReport(rep); err != nil {
		return nil, err
	}
	if query.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value query")
	}
	e := c.engine()
	res, err := e.disp.SearchContext(ctx, query.impl, c.dopt)
	if err != nil {
		return nil, err
	}
	out := c.wrap(e, res)
	if err := c.decorate(ctx, e, query, out, rep, c.dopt); err != nil {
		return nil, err
	}
	return out, nil
}

// SearchMatrix is Search with a request-scoped substitution matrix: text
// in the NCBI format, parsed against the database's alphabet, replacing
// the cluster-wide matrix for this one query. Parse failures wrap
// ErrBadMatrix. Like Search it bypasses the scheduler and cache — a
// per-request matrix changes the scores, so such results must never share
// cache entries with the cluster-wide configuration.
//
//sw:ctxroot
func (c *Cluster) SearchMatrix(query Sequence, matrixText string, report ...ReportOptions) (*ClusterResult, error) {
	return c.SearchMatrixContext(context.Background(), query, matrixText, report...)
}

// SearchMatrixContext is SearchMatrix with cancellation (see
// SearchContext for the semantics).
func (c *Cluster) SearchMatrixContext(ctx context.Context, query Sequence, matrixText string, report ...ReportOptions) (*ClusterResult, error) {
	rep, err := oneReport(report)
	if err != nil {
		return nil, err
	}
	if err := c.checkReport(rep); err != nil {
		return nil, err
	}
	if query.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value query")
	}
	dopt, err := c.doptWithMatrix(matrixText)
	if err != nil {
		return nil, err
	}
	e := c.engine()
	res, err := e.disp.SearchContext(ctx, query.impl, dopt)
	if err != nil {
		return nil, err
	}
	out := c.wrap(e, res)
	if err := c.decorate(ctx, e, query, out, rep, dopt); err != nil {
		return nil, err
	}
	return out, nil
}

// doptWithMatrix copies the cluster's dispatch options, replacing the
// substitution matrix with one parsed from user-supplied text against the
// database's alphabet. Empty text returns the options unchanged.
func (c *Cluster) doptWithMatrix(matrixText string) (core.DispatchOptions, error) {
	dopt := c.dopt
	if matrixText == "" {
		return dopt, nil
	}
	m, err := submat.Parse("custom", strings.NewReader(matrixText), c.db.db.Alphabet())
	if err != nil {
		return dopt, err
	}
	dopt.Search.Matrix = m
	return dopt, nil
}

// SearchBatch runs a batch of queries, amortising the shard split, chunk
// partition and per-backend lane packings across the whole batch. Results
// are returned in query order; an optional ReportOptions applies to every
// query of the batch. It is the context-free convenience root;
// cancellable callers use SearchBatchContext.
//
//sw:ctxroot
func (c *Cluster) SearchBatch(queries []Sequence, report ...ReportOptions) ([]*ClusterResult, error) {
	return c.SearchBatchContext(context.Background(), queries, report...)
}

// SearchBatchContext is SearchBatch with cancellation: the context is
// checked at every query boundary of the score pass and threaded into
// each query's reporting phases.
func (c *Cluster) SearchBatchContext(ctx context.Context, queries []Sequence, report ...ReportOptions) ([]*ClusterResult, error) {
	rep, err := oneReport(report)
	if err != nil {
		return nil, err
	}
	if err := c.checkReport(rep); err != nil {
		return nil, err
	}
	rqs := make([]reportQuery, len(queries))
	for i, q := range queries {
		if q.impl == nil {
			return nil, fmt.Errorf("heterosw: zero-value query %d", i)
		}
		rqs[i] = reportQuery{seq: q, rep: rep}
	}
	return c.searchBatchCtx(ctx, rqs)
}

// searchBatchCtx is the batch executor behind SearchBatch and every
// scheduler: queries must already be validated non-zero, report options
// validated. The score pass runs for the whole batch first (amortising
// pre-processing), then each query's reporting phases decorate its result.
func (c *Cluster) searchBatchCtx(ctx context.Context, rqs []reportQuery) ([]*ClusterResult, error) {
	impls := make([]*sequence.Sequence, len(rqs))
	for i, rq := range rqs {
		impls[i] = rq.seq.impl
	}
	e := c.engine()
	res, err := e.disp.SearchBatchContext(ctx, impls, c.dopt)
	if err != nil {
		return nil, err
	}
	out := make([]*ClusterResult, len(res))
	for i, r := range res {
		out[i] = c.wrap(e, r)
		if err := c.decorate(ctx, e, rqs[i].seq, out[i], rqs[i].rep, c.dopt); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// decorate runs the reporting phases over a freshly wrapped result: the
// per-call hit truncation, the significance fit and the traceback fan-out.
// It must only ever see results this call owns — cached results are
// decorated before they enter the cache, never after. e must be the same
// engine snapshot that scored the result, so the traceback fan-out routes
// over the topology generation the scores came from.
func (c *Cluster) decorate(ctx context.Context, e *engineState, query Sequence, res *ClusterResult, rep ReportOptions, dopt core.DispatchOptions) error {
	if rep == (ReportOptions{}) {
		return nil
	}
	if rep.TopK > 0 && rep.TopK > len(res.Hits) && len(res.Hits) < len(res.Scores) {
		// The score pass truncated the hit list to the cluster-wide
		// Options.TopK before this call's larger K was seen; the full
		// score list is still here, so re-select the top hits rather than
		// silently under-delivering.
		res.Hits = c.hitsFromScores(res.Scores)
	}
	if rep.TopK > 0 && rep.TopK < len(res.Hits) {
		res.Hits = res.Hits[:rep.TopK]
	} else if (rep.Alignments || rep.EValues) && rep.TopK <= 0 &&
		c.dopt.Search.TopK <= 0 && len(res.Hits) > defaultReportHits {
		// No explicit K anywhere: bound the reported list so the phases
		// below decorate every returned hit — never a partially decorated
		// full-database list, and never a full-database traceback.
		res.Hits = res.Hits[:defaultReportHits]
	}
	if rep.EValues {
		sig, err := res.FitSignificance(rep.EValueTrim)
		if err != nil {
			return fmt.Errorf("%w (%v)", ErrNoSignificance, err)
		}
		res.Significance = sig
		for i := range res.Hits {
			h := &res.Hits[i]
			h.Significance = &HitSignificance{
				BitScore: sig.BitScore(h.Score),
				EValue:   sig.EValue(h.Score),
			}
		}
	}
	if rep.Alignments {
		k := len(res.Hits)
		hits := make([]core.Hit, k)
		for i := 0; i < k; i++ {
			h := res.Hits[i]
			hits[i] = core.Hit{SeqIndex: h.Index, ID: h.ID, Score: int32(h.Score)}
		}
		details, err := e.disp.AlignHits(ctx, query.impl, hits, dopt)
		if err != nil {
			return err
		}
		for i := range details {
			d := &details[i]
			res.Hits[i].Alignment = &HitAlignment{
				QueryStart:   d.QueryStart,
				QueryEnd:     d.QueryEnd,
				SubjectStart: d.SubjectStart,
				SubjectEnd:   d.SubjectEnd,
				CIGAR:        d.CIGAR,
				Identities:   d.Identities,
				Columns:      d.Columns,
			}
		}
	}
	return nil
}

// hitsFromScores rebuilds the full descending hit list from a result's
// database-order score list, with the same stable tie order (database
// order) as the score pass's own sort, so a prefix of it is exactly what a
// larger cluster-wide TopK would have returned.
func (c *Cluster) hitsFromScores(scores []int) []Hit {
	hits := make([]Hit, len(scores))
	for i, s := range scores {
		hits[i] = Hit{Index: i, ID: c.db.Seq(i).ID(), Score: s}
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
	return hits
}

// cacheKey derives the scheduler dedup/cache key of a query: the cluster's
// option fingerprint, the report-option fingerprint (empty for score-only
// traffic, so an aligned result and a score-only result never alias) plus
// the raw encoded residues (the encoding is injective, so no decode pass
// is needed) — sequences with equal residues share one result whatever
// their IDs.
func (c *Cluster) cacheKey(rq reportQuery) (string, bool) {
	res := rq.seq.impl.Residues
	rk := rq.rep.key()
	b := make([]byte, len(c.keyBase)+len(rk)+len(res))
	n := copy(b, c.keyBase)
	n += copy(b[n:], rk)
	for i, code := range res {
		b[n+i] = byte(code)
	}
	return string(b), true
}

// newScheduler builds a micro-batching scheduler over this cluster's batch
// executor, sharing the cluster-wide result cache.
func (c *Cluster) newScheduler() *qsched.Scheduler[reportQuery, *ClusterResult] {
	return qsched.New(c.searchBatchCtx, c.cacheKey, c.cache, c.schedOpt)
}

// servingScheduler returns the cluster-wide scheduler used by
// SearchScheduled and the HTTP front end, creating it on first use.
func (c *Cluster) servingScheduler() (*qsched.Scheduler[reportQuery, *ClusterResult], error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClusterClosed
	}
	if c.serving == nil {
		c.serving = c.newScheduler()
	}
	return c.serving, nil
}

// SearchScheduled routes one query through the cluster's serving
// scheduler: concurrent callers coalesce into micro-batches (amortising
// pre-processing exactly as SearchBatch does), identical in-flight queries
// share one execution, and results are served from the cluster's LRU cache
// when possible. An optional ReportOptions requests the aligned-hit
// reporting phases; it is part of the dedup/cache key. ctx bounds the
// caller's wait — cancelling it abandons the wait, not the computation, so
// the result still lands in the cache for the next asker. This is the
// entry point the swserve HTTP front end uses.
//
// Results may be shared between callers; treat them as read-only.
func (c *Cluster) SearchScheduled(ctx context.Context, query Sequence, report ...ReportOptions) (*ClusterResult, error) {
	rep, err := oneReport(report)
	if err != nil {
		return nil, err
	}
	if err := c.checkReport(rep); err != nil {
		return nil, err
	}
	if query.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value query")
	}
	s, err := c.servingScheduler()
	if err != nil {
		return nil, err
	}
	res, err := s.Do(ctx, reportQuery{seq: query, rep: rep})
	if errors.Is(err, qsched.ErrClosed) {
		return nil, ErrClusterClosed
	}
	return res, err
}

// Totals reports the number of completed query searches and cumulative
// per-backend accounting (work grants, residues processed, simulated busy
// seconds) across every entry point and concurrent batch. The swserve
// /healthz endpoint serves this snapshot.
func (c *Cluster) Totals() (queries int64, per []BackendTotals) {
	e := c.engine()
	q, raw := e.disp.Totals()
	per = make([]BackendTotals, len(raw))
	for i, bt := range raw {
		per[i] = BackendTotals{
			Name:       bt.Name,
			Device:     e.kinds[i],
			Grants:     bt.Grants,
			Residues:   bt.Residues,
			SimSeconds: bt.SimSeconds,
			Tracebacks: bt.Tracebacks,
		}
	}
	return q, per
}

// CacheStats reports the cluster result cache's hit/miss counters and
// current entry count (all zero when caching is disabled).
func (c *Cluster) CacheStats() (hits, misses int64, entries int) {
	s := c.cache.Stats()
	return s.Hits, s.Misses, s.Entries
}

// SchedulerStats is a snapshot of the serving scheduler's activity.
type SchedulerStats struct {
	// Submitted counts scheduled submissions; Batches the dispatched
	// micro-batches and BatchedQueries the queries they carried
	// (BatchedQueries/Batches is the realised mean batch size).
	Submitted      int64
	Batches        int64
	BatchedQueries int64
	// Joined counts submissions that attached to an identical in-flight
	// query; CacheHits those answered straight from the cache.
	Joined    int64
	CacheHits int64
}

// SchedulerStats reports the serving scheduler's activity (zero until the
// first SearchScheduled or HTTP request).
func (c *Cluster) SchedulerStats() SchedulerStats {
	c.mu.Lock()
	s := c.serving
	c.mu.Unlock()
	if s == nil {
		return SchedulerStats{}
	}
	st := s.Stats()
	return SchedulerStats{
		Submitted:      st.Submitted,
		Batches:        st.Batches,
		BatchedQueries: st.Batched,
		Joined:         st.Joined,
		CacheHits:      st.CacheHits,
	}
}
