package heterosw

import (
	"fmt"
	"sync"

	"heterosw/internal/core"
	"heterosw/internal/sequence"
)

// ClusterOptions configures a Cluster over a database.
//
// The paper's Algorithm 2 hardcodes one Xeon host and one Xeon Phi and
// names a dynamic distribution strategy as future work; ClusterOptions
// generalises the roster to any number of modelled devices and makes the
// distribution strategy selectable.
type ClusterOptions struct {
	// Options carries the shared kernel configuration (variant, matrix,
	// gaps, blocking, schedule). Its Device and Threads fields are
	// ignored: the roster comes from Devices and per-backend threads from
	// Threads below.
	Options
	// Devices is the backend roster, e.g. {DeviceXeon, DevicePhi,
	// DevicePhi}. Empty selects the paper's pair {DeviceXeon, DevicePhi}.
	Devices []DeviceKind
	// Threads optionally sets each backend's simulated thread count
	// (device maximum when 0 or when the slice is shorter than the
	// roster).
	Threads []int
	// Dist selects the workload distribution: "static" (Algorithm 2's
	// residue split, the default), "dynamic" (a device-level work queue
	// of equal-residue chunks) or "guided" (shrinking chunks).
	Dist string
	// Shares pins the static residue fraction per backend; nil derives
	// model-balanced shares from the device cost models (the paper's
	// proposed model-driven strategy). Ignored by dynamic distributions.
	Shares []float64
	// ChunkResidues is the dynamic chunk granularity in residues (0
	// derives a default from the database size and roster).
	ChunkResidues int64
}

// BackendReport describes one backend's part in a cluster search.
type BackendReport struct {
	// Name identifies the backend within the roster (the device kind
	// suffixed with its roster position, e.g. "phi#1").
	Name string
	// Device is the backend's device kind.
	Device DeviceKind
	// Share is the realised fraction of database residues the backend
	// processed (static) or was scheduled in simulation (dynamic).
	Share float64
	// Chunks counts the backend's work grants: 1 shard under static
	// distribution, claimed queue chunks under dynamic ones.
	Chunks int
	// SimSeconds is the backend's simulated busy time including PCIe
	// transfers; Threads its simulated thread count (0 if it got no work).
	SimSeconds float64
	Threads    int
}

// ClusterResult reports a cluster search: the merged result plus
// per-backend accounting.
type ClusterResult struct {
	Result
	// Backends has one entry per roster backend, in roster order.
	Backends []BackendReport
}

// StreamResult is one delivery of the streaming Submit/Results pair.
type StreamResult struct {
	// Index is the query's submission order, starting at 0; results are
	// delivered in submission order.
	Index int
	// Query is the submitted query.
	Query Sequence
	// Result is the search outcome; nil when Err is set.
	Result *ClusterResult
	// Err reports a failed search (the stream continues past failures).
	Err error
}

// Cluster is an N-device search cluster over a Database: the paper's
// Algorithm 2 generalised to a device-count-agnostic dispatcher with
// batched and streaming entry points. A Cluster is safe for concurrent
// use; shard splits, chunk partitions and per-backend lane packings are
// cached so repeated and batched queries amortise all pre-processing.
type Cluster struct {
	db    *Database
	disp  *core.Dispatcher
	dopt  core.DispatchOptions
	kinds []DeviceKind

	mu        sync.Mutex
	queueCond *sync.Cond
	queue     []streamJob
	out       chan StreamResult
	started   bool
	closed    bool
	submitted int
}

type streamJob struct {
	index int
	query Sequence
}

// streamBuffer is the Results channel depth; the worker blocks once it is
// this many undelivered results ahead of the consumer.
const streamBuffer = 64

// NewCluster builds a cluster over the database with the given roster and
// distribution strategy.
func NewCluster(db *Database, opt ClusterOptions) (*Cluster, error) {
	if db == nil {
		return nil, fmt.Errorf("heterosw: nil database")
	}
	kinds := opt.Devices
	if len(kinds) == 0 {
		kinds = []DeviceKind{DeviceXeon, DevicePhi}
	}
	backends := make([]core.Backend, len(kinds))
	for i, k := range kinds {
		m, err := k.model()
		if err != nil {
			return nil, err
		}
		threads := 0
		if i < len(opt.Threads) {
			threads = opt.Threads[i]
		}
		if threads < 0 || threads > m.MaxThreads() {
			return nil, fmt.Errorf("heterosw: backend %d (%s): %d threads exceeds %d",
				i, k, threads, m.MaxThreads())
		}
		backends[i] = core.NewBackend(fmt.Sprintf("%s#%d", k, i), m, threads)
	}
	dist := opt.Dist
	if dist == "" {
		dist = "static"
	}
	d, err := core.ParseDistribution(dist)
	if err != nil {
		return nil, fmt.Errorf("heterosw: %s", err)
	}
	if opt.Shares != nil && len(opt.Shares) != len(kinds) {
		return nil, fmt.Errorf("heterosw: %d shares for %d devices", len(opt.Shares), len(kinds))
	}
	search, err := opt.Options.toCore()
	if err != nil {
		return nil, err
	}
	disp, err := core.NewDispatcher(db.db, backends)
	if err != nil {
		return nil, err
	}
	c := &Cluster{
		db:    db,
		disp:  disp,
		kinds: kinds,
		dopt: core.DispatchOptions{
			Search:        search,
			Dist:          d,
			Shares:        opt.Shares,
			ChunkResidues: opt.ChunkResidues,
		},
		out: make(chan StreamResult, streamBuffer),
	}
	c.queueCond = sync.NewCond(&c.mu)
	return c, nil
}

// Devices returns the cluster's roster.
func (c *Cluster) Devices() []DeviceKind { return append([]DeviceKind(nil), c.kinds...) }

func (c *Cluster) wrap(r *core.ClusterResult) *ClusterResult {
	out := &ClusterResult{
		Result:   *wrapResult(&r.Result),
		Backends: make([]BackendReport, len(r.PerBackend)),
	}
	for i, st := range r.PerBackend {
		out.Backends[i] = BackendReport{
			Name:       st.Name,
			Device:     c.kinds[i],
			Share:      st.Share,
			Chunks:     st.Chunks,
			SimSeconds: st.SimSeconds,
			Threads:    st.Threads,
		}
	}
	return out
}

// Search distributes one query across the cluster's backends and merges
// the score lists — Algorithm 2 with N devices.
func (c *Cluster) Search(query Sequence) (*ClusterResult, error) {
	if query.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value query")
	}
	res, err := c.disp.Search(query.impl, c.dopt)
	if err != nil {
		return nil, err
	}
	return c.wrap(res), nil
}

// SearchBatch runs a batch of queries, amortising the shard split, chunk
// partition and per-backend lane packings across the whole batch. Results
// are returned in query order.
func (c *Cluster) SearchBatch(queries []Sequence) ([]*ClusterResult, error) {
	impls := make([]*sequence.Sequence, len(queries))
	for i, q := range queries {
		if q.impl == nil {
			return nil, fmt.Errorf("heterosw: zero-value query %d", i)
		}
		impls[i] = q.impl
	}
	res, err := c.disp.SearchBatch(impls, c.dopt)
	if err != nil {
		return nil, err
	}
	out := make([]*ClusterResult, len(res))
	for i, r := range res {
		out[i] = c.wrap(r)
	}
	return out, nil
}

// Submit enqueues a query on the cluster's streaming pipeline and returns
// immediately; the matching StreamResult arrives on Results in submission
// order. Submit never blocks (the intake queue is unbounded), so the
// submit-everything-then-drain pattern is safe for any batch size; the
// worker stops at most streamBuffer undelivered results ahead of the
// Results consumer, which bounds completed-result memory. Submit fails
// after Close.
func (c *Cluster) Submit(query Sequence) error {
	if query.impl == nil {
		return fmt.Errorf("heterosw: zero-value query")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("heterosw: cluster stream closed")
	}
	if !c.started {
		c.started = true
		go c.streamWorker()
	}
	c.queue = append(c.queue, streamJob{index: c.submitted, query: query})
	c.submitted++
	c.queueCond.Signal()
	return nil
}

// Results returns the stream delivery channel. It is closed after Close
// once every submitted query has been delivered.
func (c *Cluster) Results() <-chan StreamResult { return c.out }

// Close ends the streaming session: no further Submit calls are accepted,
// and Results closes once every submitted query has been searched and
// delivered. Search and SearchBatch remain usable. Close never blocks and
// is idempotent.
func (c *Cluster) Close() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	if c.started {
		c.queueCond.Signal()
	} else {
		close(c.out)
	}
}

func (c *Cluster) streamWorker() {
	for {
		c.mu.Lock()
		for len(c.queue) == 0 && !c.closed {
			c.queueCond.Wait()
		}
		if len(c.queue) == 0 {
			c.mu.Unlock()
			close(c.out)
			return
		}
		job := c.queue[0]
		c.queue = c.queue[1:]
		c.mu.Unlock()
		res, err := c.Search(job.query)
		c.out <- StreamResult{Index: job.index, Query: job.query, Result: res, Err: err}
	}
}
