package heterosw

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"heterosw/internal/core"
	"heterosw/internal/qsched"
	"heterosw/internal/sequence"
)

// ErrClusterClosed is returned by the scheduled entry points
// (SearchScheduled and the HTTP front end) after Cluster.CloseNow. Direct
// Search and SearchBatch calls remain usable.
var ErrClusterClosed = errors.New("heterosw: cluster closed")

// ClusterOptions configures a Cluster over a database.
//
// The paper's Algorithm 2 hardcodes one Xeon host and one Xeon Phi and
// names a dynamic distribution strategy as future work; ClusterOptions
// generalises the roster to any number of modelled devices and makes the
// distribution strategy selectable. The scheduling knobs below tune the
// concurrent micro-batching query scheduler behind the streaming and
// serving paths (Stream, SearchScheduled, the swserve HTTP front end).
type ClusterOptions struct {
	// Options carries the shared kernel configuration (variant, matrix,
	// gaps, blocking, schedule). Its Device and Threads fields are
	// ignored: the roster comes from Devices and per-backend threads from
	// Threads below.
	Options
	// Devices is the backend roster, e.g. {DeviceXeon, DevicePhi,
	// DevicePhi}. Empty selects the paper's pair {DeviceXeon, DevicePhi}.
	Devices []DeviceKind
	// Threads optionally sets each backend's simulated thread count
	// (device maximum when 0 or when the slice is shorter than the
	// roster).
	Threads []int
	// Dist selects the workload distribution: "static" (Algorithm 2's
	// residue split, the default), "dynamic" (a device-level work queue
	// of equal-residue chunks) or "guided" (shrinking chunks).
	Dist string
	// Shares pins the static residue fraction per backend; nil derives
	// model-balanced shares from the device cost models (the paper's
	// proposed model-driven strategy). Ignored by dynamic distributions.
	Shares []float64
	// ChunkResidues is the dynamic chunk granularity in residues (0
	// derives a default from the database size and roster).
	ChunkResidues int64

	// MaxInFlight caps the micro-batches a scheduler runs concurrently
	// (default 4). More in-flight batches keep multi-core hosts busy
	// under bursty traffic; 1 serialises batches.
	MaxInFlight int
	// BatchWindow is the micro-batch coalescing window: once batches are
	// in flight, the intake collector waits this long for more
	// submissions before dispatching a partial batch, so backlogs
	// coalesce into fuller batches (default 500µs; negative disables).
	// Dispatch is immediate while the scheduler is idle, so the window
	// adds no latency to an unloaded system.
	BatchWindow time.Duration
	// MaxBatch caps the queries coalesced into one micro-batch
	// (default 32).
	MaxBatch int
	// CacheSize is the capacity, in entries, of the cluster's LRU result
	// cache, shared by every scheduled path so repeated queries are free.
	// Each cached result holds a database-length score list and hit
	// table, so the zero-value default is derived from the database size
	// against a ~512 MB budget (at most 512 entries, at least 8 — about
	// 14 entries on the full 541k-sequence Swiss-Prot). Negative disables
	// caching.
	CacheSize int
}

// Cache sizing when ClusterOptions.CacheSize is zero: a memory budget
// divided by the estimated per-entry cost (scores, hits, IDs — roughly
// cacheBytesPerSeq bytes per database sequence), clamped to
// [minCacheSize, maxCacheSize].
const (
	cacheBudgetBytes = 512 << 20
	cacheBytesPerSeq = 96
	minCacheSize     = 8
	maxCacheSize     = 512
)

func defaultCacheSize(dbLen int) int {
	per := int64(dbLen)*cacheBytesPerSeq + 4096
	n := int(cacheBudgetBytes / per)
	if n > maxCacheSize {
		return maxCacheSize
	}
	if n < minCacheSize {
		return minCacheSize
	}
	return n
}

// BackendReport describes one backend's part in a cluster search.
type BackendReport struct {
	// Name identifies the backend within the roster (the device kind
	// suffixed with its roster position, e.g. "phi#1").
	Name string
	// Device is the backend's device kind.
	Device DeviceKind
	// Share is the realised fraction of database residues the backend
	// processed (static) or was scheduled in simulation (dynamic).
	Share float64
	// Chunks counts the backend's work grants: 1 shard under static
	// distribution, claimed queue chunks under dynamic ones.
	Chunks int
	// SimSeconds is the backend's simulated busy time including PCIe
	// transfers; Threads its simulated thread count (0 if it got no work).
	SimSeconds float64
	Threads    int
}

// ClusterResult reports a cluster search: the merged result plus
// per-backend accounting.
type ClusterResult struct {
	Result
	// Backends has one entry per roster backend, in roster order.
	Backends []BackendReport
}

// BackendTotals is one backend's cumulative accounting across every search
// the cluster has completed, whichever concurrent batch or stream it
// arrived on.
type BackendTotals struct {
	// Name identifies the backend within the roster; Device is its kind.
	Name   string
	Device DeviceKind
	// Grants counts executed work grants (shards under static, claimed
	// chunks under dynamic distributions); Residues the database residues
	// processed; SimSeconds the accumulated simulated busy time.
	Grants     int64
	Residues   int64
	SimSeconds float64
}

// Cluster is an N-device search cluster over a Database: the paper's
// Algorithm 2 generalised to a device-count-agnostic dispatcher with
// batched, streaming and scheduled entry points. A Cluster is safe for
// concurrent use; shard splits, chunk partitions and per-backend lane
// packings are cached so repeated and batched queries amortise all
// pre-processing, and the scheduled paths share one LRU result cache so
// repeated queries are free.
type Cluster struct {
	db    *Database
	disp  *core.Dispatcher
	dopt  core.DispatchOptions
	kinds []DeviceKind

	schedOpt qsched.Options
	cache    *qsched.Cache[*ClusterResult]
	keyBase  string

	mu        sync.Mutex
	serving   *qsched.Scheduler[Sequence, *ClusterResult] // lazy; SearchScheduled and the HTTP front end
	defStream *Stream                                     // lazy; the Submit/Results/Close compatibility surface
	defClosed bool                                        // Close seen before the default stream existed
	closed    bool                                        // set by CloseNow; scheduled paths refuse new work
}

// NewCluster builds a cluster over the database with the given roster and
// distribution strategy.
func NewCluster(db *Database, opt ClusterOptions) (*Cluster, error) {
	if db == nil {
		return nil, fmt.Errorf("heterosw: nil database")
	}
	kinds := opt.Devices
	if len(kinds) == 0 {
		kinds = []DeviceKind{DeviceXeon, DevicePhi}
	}
	backends := make([]core.Backend, len(kinds))
	for i, k := range kinds {
		m, err := k.model()
		if err != nil {
			return nil, err
		}
		threads := 0
		if i < len(opt.Threads) {
			threads = opt.Threads[i]
		}
		if threads < 0 || threads > m.MaxThreads() {
			return nil, fmt.Errorf("heterosw: backend %d (%s): %d threads exceeds %d",
				i, k, threads, m.MaxThreads())
		}
		backends[i] = core.NewBackend(fmt.Sprintf("%s#%d", k, i), m, threads)
	}
	dist := opt.Dist
	if dist == "" {
		dist = "static"
	}
	d, err := core.ParseDistribution(dist)
	if err != nil {
		return nil, fmt.Errorf("heterosw: %s", err)
	}
	if opt.Shares != nil && len(opt.Shares) != len(kinds) {
		return nil, fmt.Errorf("heterosw: %d shares for %d devices", len(opt.Shares), len(kinds))
	}
	search, err := opt.Options.toCore()
	if err != nil {
		return nil, err
	}
	disp, err := core.NewDispatcher(db.db, backends)
	if err != nil {
		return nil, err
	}
	cacheSize := opt.CacheSize
	if cacheSize == 0 {
		cacheSize = defaultCacheSize(db.Len())
	}
	c := &Cluster{
		db:    db,
		disp:  disp,
		kinds: kinds,
		dopt: core.DispatchOptions{
			Search:        search,
			Dist:          d,
			Shares:        opt.Shares,
			ChunkResidues: opt.ChunkResidues,
		},
		schedOpt: qsched.Options{
			MaxBatch:    opt.MaxBatch,
			Window:      opt.BatchWindow,
			MaxInFlight: opt.MaxInFlight,
		},
		cache: qsched.NewCache[*ClusterResult](cacheSize),
	}
	// The cache key pairs the query residues with every option that can
	// change a result; within one cluster the options are fixed, so the
	// fingerprint is a constant prefix.
	c.keyBase = fmt.Sprintf("%v|%v|%d|%+v|", c.dopt.Dist, c.dopt.Shares, c.dopt.ChunkResidues, c.dopt.Search)
	return c, nil
}

// Devices returns the cluster's roster.
func (c *Cluster) Devices() []DeviceKind { return append([]DeviceKind(nil), c.kinds...) }

func (c *Cluster) wrap(r *core.ClusterResult) *ClusterResult {
	out := &ClusterResult{
		Result:   *wrapResult(&r.Result),
		Backends: make([]BackendReport, len(r.PerBackend)),
	}
	for i, st := range r.PerBackend {
		out.Backends[i] = BackendReport{
			Name:       st.Name,
			Device:     c.kinds[i],
			Share:      st.Share,
			Chunks:     st.Chunks,
			SimSeconds: st.SimSeconds,
			Threads:    st.Threads,
		}
	}
	return out
}

// Search distributes one query across the cluster's backends and merges
// the score lists — Algorithm 2 with N devices. Search bypasses the
// scheduler and cache; serving traffic should prefer SearchScheduled.
func (c *Cluster) Search(query Sequence) (*ClusterResult, error) {
	if query.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value query")
	}
	res, err := c.disp.Search(query.impl, c.dopt)
	if err != nil {
		return nil, err
	}
	return c.wrap(res), nil
}

// SearchBatch runs a batch of queries, amortising the shard split, chunk
// partition and per-backend lane packings across the whole batch. Results
// are returned in query order.
func (c *Cluster) SearchBatch(queries []Sequence) ([]*ClusterResult, error) {
	for i, q := range queries {
		if q.impl == nil {
			return nil, fmt.Errorf("heterosw: zero-value query %d", i)
		}
	}
	return c.searchBatchCtx(context.Background(), queries)
}

// searchBatchCtx is the batch executor behind SearchBatch and every
// scheduler: queries must already be validated non-zero.
func (c *Cluster) searchBatchCtx(ctx context.Context, queries []Sequence) ([]*ClusterResult, error) {
	impls := make([]*sequence.Sequence, len(queries))
	for i, q := range queries {
		impls[i] = q.impl
	}
	res, err := c.disp.SearchBatchContext(ctx, impls, c.dopt)
	if err != nil {
		return nil, err
	}
	out := make([]*ClusterResult, len(res))
	for i, r := range res {
		out[i] = c.wrap(r)
	}
	return out, nil
}

// cacheKey derives the scheduler dedup/cache key of a query: the cluster's
// option fingerprint plus the raw encoded residues (the encoding is
// injective, so no decode pass is needed), so sequences with equal
// residues share one result whatever their IDs.
func (c *Cluster) cacheKey(q Sequence) (string, bool) {
	res := q.impl.Residues
	b := make([]byte, len(c.keyBase)+len(res))
	n := copy(b, c.keyBase)
	for i, code := range res {
		b[n+i] = byte(code)
	}
	return string(b), true
}

// newScheduler builds a micro-batching scheduler over this cluster's batch
// executor, sharing the cluster-wide result cache.
func (c *Cluster) newScheduler() *qsched.Scheduler[Sequence, *ClusterResult] {
	return qsched.New(c.searchBatchCtx, c.cacheKey, c.cache, c.schedOpt)
}

// servingScheduler returns the cluster-wide scheduler used by
// SearchScheduled and the HTTP front end, creating it on first use.
func (c *Cluster) servingScheduler() (*qsched.Scheduler[Sequence, *ClusterResult], error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, ErrClusterClosed
	}
	if c.serving == nil {
		c.serving = c.newScheduler()
	}
	return c.serving, nil
}

// SearchScheduled routes one query through the cluster's serving
// scheduler: concurrent callers coalesce into micro-batches (amortising
// pre-processing exactly as SearchBatch does), identical in-flight queries
// share one execution, and results are served from the cluster's LRU cache
// when possible. ctx bounds the caller's wait — cancelling it abandons the
// wait, not the computation, so the result still lands in the cache for
// the next asker. This is the entry point the swserve HTTP front end uses.
//
// Results may be shared between callers; treat them as read-only.
func (c *Cluster) SearchScheduled(ctx context.Context, query Sequence) (*ClusterResult, error) {
	if query.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value query")
	}
	s, err := c.servingScheduler()
	if err != nil {
		return nil, err
	}
	res, err := s.Do(ctx, query)
	if errors.Is(err, qsched.ErrClosed) {
		return nil, ErrClusterClosed
	}
	return res, err
}

// Totals reports the number of completed query searches and cumulative
// per-backend accounting (work grants, residues processed, simulated busy
// seconds) across every entry point and concurrent batch. The swserve
// /healthz endpoint serves this snapshot.
func (c *Cluster) Totals() (queries int64, per []BackendTotals) {
	q, raw := c.disp.Totals()
	per = make([]BackendTotals, len(raw))
	for i, bt := range raw {
		per[i] = BackendTotals{
			Name:       bt.Name,
			Device:     c.kinds[i],
			Grants:     bt.Grants,
			Residues:   bt.Residues,
			SimSeconds: bt.SimSeconds,
		}
	}
	return q, per
}

// CacheStats reports the cluster result cache's hit/miss counters and
// current entry count (all zero when caching is disabled).
func (c *Cluster) CacheStats() (hits, misses int64, entries int) {
	s := c.cache.Stats()
	return s.Hits, s.Misses, s.Entries
}

// SchedulerStats is a snapshot of the serving scheduler's activity.
type SchedulerStats struct {
	// Submitted counts scheduled submissions; Batches the dispatched
	// micro-batches and BatchedQueries the queries they carried
	// (BatchedQueries/Batches is the realised mean batch size).
	Submitted      int64
	Batches        int64
	BatchedQueries int64
	// Joined counts submissions that attached to an identical in-flight
	// query; CacheHits those answered straight from the cache.
	Joined    int64
	CacheHits int64
}

// SchedulerStats reports the serving scheduler's activity (zero until the
// first SearchScheduled or HTTP request).
func (c *Cluster) SchedulerStats() SchedulerStats {
	c.mu.Lock()
	s := c.serving
	c.mu.Unlock()
	if s == nil {
		return SchedulerStats{}
	}
	st := s.Stats()
	return SchedulerStats{
		Submitted:      st.Submitted,
		Batches:        st.Batches,
		BatchedQueries: st.Batched,
		Joined:         st.Joined,
		CacheHits:      st.CacheHits,
	}
}
