package heterosw

import (
	"context"
	"errors"
	"testing"
)

// TestSearchContextCancelled proves a dead caller aborts the whole search:
// a pre-cancelled context fails the score pass at the first query boundary
// with context.Canceled, not a partial result.
func TestSearchContextCancelled(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := cl.SearchContext(ctx, NewSequence("q", "MKWVLA"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled search: err = %v, want context.Canceled", err)
	}
	if res != nil {
		t.Fatalf("cancelled search returned a result: %+v", res)
	}
}

// TestDecorateCancelled pins the reporting phase specifically: a context
// cancelled after the score pass aborts the traceback fan-out (AlignHits
// workers check ctx at every queue pop) instead of re-aligning the hits.
func TestDecorateCancelled(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	q := NewSequence("q", "MKWVLA")
	res, err := cl.SearchContext(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err = cl.decorate(ctx, cl.engine(), q, res, ReportOptions{Alignments: true}, cl.dopt)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled decorate: err = %v, want context.Canceled", err)
	}
	// The same call with a live context succeeds, so the failure above is
	// the cancellation, not the inputs.
	if err := cl.decorate(context.Background(), cl.engine(), q, res, ReportOptions{Alignments: true}, cl.dopt); err != nil {
		t.Fatalf("live decorate: %v", err)
	}
	for _, h := range res.Hits {
		if h.Alignment == nil {
			t.Fatalf("hit %q missing alignment after live decorate", h.ID)
		}
	}
}

// TestSearchTranslatedContextCancelled covers the translated path: the
// per-frame batch search shares the request context, so cancellation stops
// the six-frame fan-out too.
func TestSearchTranslatedContextCancelled(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = cl.SearchTranslatedContext(ctx, NewDNASequence("d", "ATGAAATGGGTACTGGCT"))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled translated search: err = %v, want context.Canceled", err)
	}
}
