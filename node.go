package heterosw

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"heterosw/internal/alphabet"
	"heterosw/internal/core"
	"heterosw/internal/remote"
	"heterosw/internal/sequence"
)

// ShardServer is the node side of distributed search: it serves one or
// more shard clusters — each a full Cluster over one shard .swdb — under
// the remote shard protocol (GET /shards, POST /shard/search, POST
// /shard/align; see package heterosw/internal/remote). Shards are
// addressed by their .swdb checksum key, so a coordinator holding a
// manifest routes to this node only for bytes both sides agree on.
//
// Each shard search runs through its cluster's serving scheduler, so
// concurrent coordinator fan-outs coalesce into micro-batches and
// repeated shard queries hit the per-shard LRU cache, exactly like
// front-door /search traffic on a single node.
type ShardServer struct {
	shards map[string]*Cluster
	keys   []string // shard keys in construction order, for stable listings
	start  time.Time
}

// NewShardServer builds a shard node over one cluster per shard. Every
// cluster's database must carry a durable content key (a .swdb-loaded
// database does; an in-memory one does not) and all shards must share one
// alphabet.
func NewShardServer(clusters []*Cluster) (*ShardServer, error) {
	if len(clusters) == 0 {
		return nil, fmt.Errorf("heterosw: shard server needs at least one shard cluster")
	}
	s := &ShardServer{shards: make(map[string]*Cluster, len(clusters)), start: time.Now()}
	var alpha string
	for i, cl := range clusters {
		if cl == nil {
			return nil, fmt.Errorf("heterosw: shard cluster %d is nil", i)
		}
		key := cl.db.Key()
		if key == "" {
			return nil, fmt.Errorf("heterosw: shard cluster %d has no database key (load shards from .swdb files)", i)
		}
		if _, dup := s.shards[key]; dup {
			return nil, fmt.Errorf("heterosw: shard key %s served twice", key)
		}
		if a := cl.db.Alphabet(); i == 0 {
			alpha = a
		} else if a != alpha {
			return nil, fmt.Errorf("heterosw: shard %d alphabet %s disagrees with %s", i, a, alpha)
		}
		s.shards[key] = cl
		s.keys = append(s.keys, key)
	}
	return s, nil
}

// Handler returns the node's HTTP handler.
func (s *ShardServer) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/shards", s.handleShards)
	mux.HandleFunc("/shard/search", s.handleShardSearch)
	mux.HandleFunc("/shard/align", s.handleShardAlign)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

// Close drains every shard cluster's streaming session gracefully.
func (s *ShardServer) Close() {
	for _, key := range s.keys {
		s.shards[key].Close()
	}
}

// CloseNow tears down every shard cluster's scheduled paths; in-flight
// shard searches resolve ErrClusterClosed and answer the retryable 503.
func (s *ShardServer) CloseNow() {
	for _, key := range s.keys {
		s.shards[key].CloseNow()
	}
}

func (s *ShardServer) handleShards(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	resp := remote.ShardsResponse{Alphabet: s.shards[s.keys[0]].db.Alphabet()}
	for _, key := range s.keys {
		cl := s.shards[key]
		resp.Shards = append(resp.Shards, remote.ShardInfo{
			Key:       key,
			Sequences: cl.db.Len(),
			Residues:  cl.db.Residues(),
		})
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardQuery resolves the shard and query shared by the search and align
// endpoints, writing the error response itself when it fails.
func (s *ShardServer) shardQuery(w http.ResponseWriter, shardKey, id string, codes []byte) (*Cluster, Sequence, bool) {
	cl, ok := s.shards[shardKey]
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Errorf("unknown shard %q (serving %d shards)", shardKey, len(s.keys)))
		return nil, Sequence{}, false
	}
	if len(codes) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("empty query codes"))
		return nil, Sequence{}, false
	}
	if len(codes) > maxQueryResidues {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d query residues exceeds the %d limit", len(codes), maxQueryResidues))
		return nil, Sequence{}, false
	}
	alpha := cl.db.db.Alphabet()
	enc := make([]alphabet.Code, len(codes))
	for i, b := range codes {
		// The padding code (alpha.Size()) is an internal kernel value, not a
		// residue; accepting it would desync lane packing.
		if int(b) >= alpha.Size() {
			writeError(w, http.StatusBadRequest,
				fmt.Errorf("query code %d at position %d outside the %d-letter %s alphabet", b, i, alpha.Size(), alpha.Name()))
			return nil, Sequence{}, false
		}
		enc[i] = alphabet.Code(b)
	}
	if id == "" {
		id = "query"
	}
	return cl, Sequence{impl: &sequence.Sequence{ID: id, Residues: enc, Alpha: alpha}}, true
}

func (s *ShardServer) handleShardSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req remote.ShardSearchRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("invalid request: %w", err))
		return
	}
	cl, q, ok := s.shardQuery(w, req.Shard, req.ID, req.Codes)
	if !ok {
		return
	}
	res, err := cl.SearchScheduled(r.Context(), q)
	if err != nil {
		writeError(w, searchStatus(r, err), err)
		return
	}
	resp := remote.ShardSearchResponse{
		Scores:      make([]int32, len(res.Scores)),
		Cells:       res.Cells,
		Threads:     res.Threads,
		SimSeconds:  res.SimSeconds,
		WallSeconds: res.WallSeconds,
		Overflows:   res.Overflows,
		Overflows8:  res.Overflows8,
	}
	for i, sc := range res.Scores {
		resp.Scores[i] = int32(sc)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *ShardServer) handleShardAlign(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("POST required"))
		return
	}
	var req remote.ShardAlignRequest
	if err := decodeBody(w, r, &req); err != nil {
		writeError(w, decodeStatus(err), fmt.Errorf("invalid request: %w", err))
		return
	}
	cl, q, ok := s.shardQuery(w, req.Shard, req.ID, req.Codes)
	if !ok {
		return
	}
	if len(req.Indices) != len(req.Scores) {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d indices with %d scores", len(req.Indices), len(req.Scores)))
		return
	}
	if len(req.Indices) == 0 {
		writeError(w, http.StatusBadRequest, errors.New("no indices to align"))
		return
	}
	if len(req.Indices) > MaxAlignHits {
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%d tracebacks exceeds the %d limit", len(req.Indices), MaxAlignHits))
		return
	}
	details, err := cl.alignIndices(r.Context(), q, req.Indices, req.Scores)
	if err != nil {
		writeError(w, searchStatus(r, err), err)
		return
	}
	resp := remote.ShardAlignResponse{Alignments: make([]remote.AlignmentWire, len(details))}
	for i, d := range details {
		resp.Alignments[i] = remote.AlignmentWire{
			Index:        d.SeqIndex,
			Score:        d.Score,
			QueryStart:   d.QueryStart,
			QueryEnd:     d.QueryEnd,
			SubjectStart: d.SubjectStart,
			SubjectEnd:   d.SubjectEnd,
			CIGAR:        d.CIGAR,
			Identities:   d.Identities,
			Columns:      d.Columns,
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardHealthJSON is the node /healthz response.
type shardHealthJSON struct {
	Status        string             `json:"status"`
	UptimeSeconds float64            `json:"uptime_seconds"`
	Shards        []remote.ShardInfo `json:"shards"`
}

func (s *ShardServer) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, errors.New("GET required"))
		return
	}
	h := shardHealthJSON{Status: "ok", UptimeSeconds: time.Since(s.start).Seconds()}
	for _, key := range s.keys {
		cl := s.shards[key]
		h.Shards = append(h.Shards, remote.ShardInfo{
			Key:       key,
			Sequences: cl.db.Len(),
			Residues:  cl.db.Residues(),
		})
	}
	writeJSON(w, http.StatusOK, h)
}

// alignIndices is the node-side traceback entry point: align the query
// against the database sequences at the given caller indices, verifying
// each coordinator-supplied kernel score against the local traceback. A
// mismatch means the two sides disagree about the shard contents — a
// non-retryable failure by construction, since shard routing is keyed on
// content checksums.
func (c *Cluster) alignIndices(ctx context.Context, query Sequence, indices []int, scores []int32) ([]core.AlignmentDetail, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, ErrClusterClosed
	}
	if len(indices) != len(scores) {
		return nil, fmt.Errorf("heterosw: %d indices with %d scores", len(indices), len(scores))
	}
	hits := make([]core.Hit, len(indices))
	for i, si := range indices {
		if si < 0 || si >= c.db.Len() {
			return nil, fmt.Errorf("heterosw: align index %d outside [0,%d)", si, c.db.Len())
		}
		hits[i] = core.Hit{SeqIndex: si, ID: c.db.Seq(si).ID(), Score: scores[i]}
	}
	return c.engine().disp.AlignHits(ctx, query.impl, hits, c.dopt)
}
