package heterosw

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"heterosw/internal/sequence"
	"heterosw/internal/translate"
)

// Formats lists the supported search output formats: "blast" (the
// BLAST-style text report of WriteReport), "sam" (SAM 1.6 alignment
// lines) and "tsv" (BLAST tabular outfmt-6 columns).
func Formats() []string { return []string{"blast", "sam", "tsv"} }

// WriteFormat renders a search result in the named format (see Formats).
// width only affects the "blast" format's alignment wrap column.
func WriteFormat(w io.Writer, format string, query Sequence, db *Database, res *ClusterResult, width int) error {
	switch format {
	case "", "blast":
		return WriteReport(w, query, db, res, width)
	case "sam":
		return WriteSAM(w, query, db, res)
	case "tsv":
		return WriteTSV(w, query, db, res)
	}
	return fmt.Errorf("heterosw: unknown output format %q (have %s)",
		format, strings.Join(Formats(), ", "))
}

// frameQueries translates a DNA query into its six frame proteins, keyed
// by frame index (+1..+3, -1..-3), as Sequence values whose IDs match the
// frame queries SearchTranslated runs.
func frameQueries(query Sequence) map[int]Sequence {
	out := make(map[int]Sequence, 6)
	if query.impl == nil {
		return out
	}
	for _, f := range translate.Frames(query.impl.Residues) {
		out[f.Index] = Sequence{impl: &sequence.Sequence{
			ID:       fmt.Sprintf("%s|frame%+d", query.impl.ID, f.Index),
			Desc:     query.impl.Desc,
			Residues: f.Protein,
		}}
	}
	return out
}

// effectiveQuery resolves the sequence a hit's CIGAR applies to: the query
// itself for direct searches, the winning frame's protein for translated
// hits (lazily translating into frames on first use).
func effectiveQuery(query Sequence, h Hit, frames *map[int]Sequence) Sequence {
	if h.Frame == 0 {
		return query
	}
	if *frames == nil {
		*frames = frameQueries(query)
	}
	return (*frames)[h.Frame]
}

// WriteSAM renders the aligned hits of a search as SAM 1.6: one @SQ header
// line per hit subject, then one alignment line per hit carrying a
// traceback. The record's read is the search query (for translated
// searches, the winning frame's protein); unaligned query ends become
// soft clips, and the Smith-Waterman score rides in the AS:i tag (with
// ZF:i carrying the frame for translated hits). SEQ and CIGAR are always
// emitted in alignment orientation — the frame protein is what actually
// aligned, so FLAG stays 0 and the originating strand travels only in
// ZF:i. (Setting FLAG 0x10 would assert that SEQ is the reverse
// complement of the original read, which a frame protein is not: a
// consumer un-reverse-complementing per the flag would corrupt the
// record.) Hits without a traceback (no ReportOptions.Alignments, or
// beyond the aligned top-K) are omitted.
func WriteSAM(w io.Writer, query Sequence, db *Database, res *ClusterResult) error {
	if query.impl == nil {
		return fmt.Errorf("heterosw: zero-value query")
	}
	if db == nil || res == nil {
		return fmt.Errorf("heterosw: nil database or result")
	}
	var sb strings.Builder
	sb.WriteString("@HD\tVN:1.6\tSO:unknown\n")
	seen := make(map[int]bool)
	for _, h := range res.Hits {
		if h.Alignment == nil || seen[h.Index] {
			continue
		}
		seen[h.Index] = true
		fmt.Fprintf(&sb, "@SQ\tSN:%s\tLN:%d\n", sanitizeField(h.ID), db.Seq(h.Index).Len())
	}
	sb.WriteString("@PG\tID:heterosw\tPN:heterosw\n")

	var frames map[int]Sequence
	for _, h := range res.Hits {
		a := h.Alignment
		if a == nil || a.CIGAR == "*" || a.Columns == 0 {
			continue
		}
		q := effectiveQuery(query, h, &frames)
		qseq := q.String()
		var cigar strings.Builder
		if a.QueryStart > 0 {
			fmt.Fprintf(&cigar, "%dS", a.QueryStart)
		}
		cigar.WriteString(a.CIGAR)
		if tail := len(qseq) - a.QueryEnd; tail > 0 {
			fmt.Fprintf(&cigar, "%dS", tail)
		}
		fmt.Fprintf(&sb, "%s\t0\t%s\t%d\t255\t%s\t*\t0\t0\t%s\t*\tAS:i:%d",
			sanitizeField(q.ID()), sanitizeField(h.ID), a.SubjectStart+1,
			cigar.String(), qseq, h.Score)
		if s := h.Significance; s != nil {
			fmt.Fprintf(&sb, "\tZE:f:%.3g", s.EValue)
		}
		if h.Frame != 0 {
			fmt.Fprintf(&sb, "\tZF:i:%d", h.Frame)
		}
		sb.WriteByte('\n')
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteTSV renders the aligned hits of a search as BLAST tabular output
// (outfmt 6): qseqid sseqid pident length mismatch gapopen qstart qend
// sstart send evalue bitscore, tab-separated, one line per hit with a
// traceback. Coordinates are 1-based inclusive; for translated hits the
// query range is in nucleotides of the original DNA query, with qstart >
// qend marking reverse-frame hits as blastx does. Missing significance
// renders evalue and bitscore as "-".
func WriteTSV(w io.Writer, query Sequence, db *Database, res *ClusterResult) error {
	if query.impl == nil {
		return fmt.Errorf("heterosw: zero-value query")
	}
	if db == nil || res == nil {
		return fmt.Errorf("heterosw: nil database or result")
	}
	var sb strings.Builder
	for _, h := range res.Hits {
		a := h.Alignment
		if a == nil || a.CIGAR == "*" || a.Columns == 0 {
			continue
		}
		matches, gapOpens, err := cigarStats(a.CIGAR)
		if err != nil {
			return fmt.Errorf("heterosw: hit %s: %w", h.ID, err)
		}
		qstart, qend := a.QueryStart+1, a.QueryEnd
		if h.Frame != 0 {
			qstart, qend = a.QueryDNAStart+1, a.QueryDNAEnd
			if h.Frame < 0 {
				qstart, qend = qend, qstart
			}
		}
		pident := 100 * float64(a.Identities) / float64(a.Columns)
		evalue, bits := "-", "-"
		if s := h.Significance; s != nil {
			evalue = fmt.Sprintf("%.3g", s.EValue)
			bits = fmt.Sprintf("%.1f", s.BitScore)
		}
		fmt.Fprintf(&sb, "%s\t%s\t%.2f\t%d\t%d\t%d\t%d\t%d\t%d\t%d\t%s\t%s\n",
			sanitizeField(query.ID()), sanitizeField(h.ID), pident, a.Columns,
			matches-a.Identities, gapOpens, qstart, qend,
			a.SubjectStart+1, a.SubjectEnd, evalue, bits)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// cigarStats counts the aligned (M) columns and gap openings (maximal D/I
// runs) of a CIGAR path.
func cigarStats(c string) (matches, gapOpens int, err error) {
	for i := 0; i < len(c); {
		j := i
		for j < len(c) && c[j] >= '0' && c[j] <= '9' {
			j++
		}
		if j == i || j >= len(c) {
			return 0, 0, fmt.Errorf("malformed CIGAR %q", c)
		}
		run, aerr := strconv.Atoi(c[i:j])
		if aerr != nil || run <= 0 {
			return 0, 0, fmt.Errorf("malformed CIGAR %q", c)
		}
		switch c[j] {
		case 'M':
			matches += run
		case 'D', 'I':
			gapOpens++
		default:
			return 0, 0, fmt.Errorf("unknown CIGAR op %q in %q", c[j], c)
		}
		i = j + 1
	}
	return matches, gapOpens, nil
}

// sanitizeField makes an identifier safe for tab-separated formats.
func sanitizeField(s string) string {
	if s == "" {
		return "*"
	}
	return strings.Map(func(r rune) rune {
		if r == '\t' || r == '\n' || r == '\r' || r == ' ' {
			return '_'
		}
		return r
	}, s)
}
