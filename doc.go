// Package heterosw is a Smith-Waterman protein database search library for
// heterogeneous systems, reproducing Rucci et al., "Smith-Waterman
// Algorithm on Heterogeneous Systems: A Case Study" (IEEE CLUSTER 2014).
//
// The library provides:
//
//   - exact local alignment (Smith-Waterman with affine gaps) with
//     traceback for pairwise use — see Align, Score and ScoreBanded;
//   - a parallel database-search engine with the paper's six kernel
//     variants ({no-vec, guided-simd, intrinsic} x {query profile, score
//     profile}), cache blocking, an adaptive precision ladder (an 8-bit
//     biased first pass with twice the lanes per vector word, escalating
//     saturated lanes 8 -> 16 -> 32 bits; select it with the
//     "intrinsic-SP-8bit" / "intrinsic-QP-8bit" variant names), and
//     intra-task handling of extremely long subjects — see
//     Database.Search;
//   - the heterogeneous CPU+coprocessor execution of the paper's
//     Algorithm 2, with a static workload split and overlapped offload —
//     see Database.SearchHetero;
//   - an N-device cluster dispatcher generalising Algorithm 2 to any
//     roster of modelled devices, with static (residue split), dynamic
//     and guided (device-level chunk queue) workload distributions,
//     batched multi-query search and a streaming Submit/Results pipeline
//     — see NewCluster, Cluster.Search, Cluster.SearchBatch and
//     Cluster.Submit;
//   - a concurrent micro-batching query scheduler behind every streaming
//     and serving path: submissions coalesce into adaptive micro-batches,
//     several batches run in flight, identical queries share one
//     execution and repeats come from a cluster-wide LRU cache — see
//     Cluster.NewStream, Cluster.SearchScheduled and the cmd/swserve
//     HTTP front end;
//   - two-phase aligned-hit reporting: after the vectorised score pass
//     selects the top-K hits, a traceback phase re-aligns the query
//     against just those K subjects across the roster and decorates each
//     hit with coordinates, a CIGAR, identity counts and (optionally) a
//     bit score and E-value from a Gumbel null model fitted over the full
//     score distribution — see ReportOptions, Hit.Alignment,
//     Hit.Significance and WriteReport;
//   - a native AVX2 vector backend for the kernels' SIMD primitive set
//     (internal/vec): on amd64 hosts with AVX2 the inter-task kernels run
//     hand-written assembly column steps (16x int16 / 32x uint8 lanes per
//     256-bit register) selected by runtime CPU detection, with the
//     portable pure-Go loops as the verified fallback everywhere else —
//     set HETEROSW_VEC=portable (or build with -tags purego) to force
//     the portable backend; both backends return bit-identical scores;
//   - deterministic performance models of the paper's two devices (dual
//     Xeon E5-2670 host, 60-core Xeon Phi) that report simulated GCUPS
//     alongside the real wall-clock throughput of the Go kernels;
//   - a synthetic Swiss-Prot workload generator matching the statistics of
//     the paper's benchmark database, plus FASTA I/O for real data;
//   - a persistent preprocessed database format (.swdb): a versioned,
//     checksummed binary image of the fully preprocessed database that
//     loads by mmap and zero-copy slicing — no parse, no sort, no
//     per-sequence copies — see WriteIndexFile, OpenIndexFile and
//     LoadDatabaseFile, and the cmd/swindex CLI;
//   - genomics workloads over a generic alphabet layer: nucleotide
//     database search under the IUPAC DNA alphabet with match/mismatch
//     scoring (NewDNASequence, ReadDNAFASTAFile, LoadDNADatabaseFile),
//     blastx-style six-frame translated search of DNA queries against
//     protein databases with per-hit frames and DNA coordinates
//     (Cluster.SearchTranslated), user-supplied substitution matrices in
//     NCBI textual form (Options.MatrixText, Cluster.SearchMatrix, the
//     ErrBadMatrix error family), and SAM 1.6 / BLAST tabular output of
//     aligned results (WriteFormat, swsearch -outfmt, the format field
//     on POST /search);
//   - distributed multi-node serving over .swdb shards: swindex split
//     cuts a parent index into shard indexes plus a manifest,
//     NewShardServer serves the shard execution protocol on each node,
//     and NewDistributedCluster mounts the shards as remote backends on
//     an ordinary *Cluster — scores merge back into parent order and
//     E-values fit over the union distribution, so results are
//     byte-identical to a single-node search of the unsplit database,
//     with per-attempt timeouts, 503-only retries with exponential
//     backoff across replicas, and hedged requests for tail latency —
//     see NewDistributedCluster, DistributedOptions, NewShardServer and
//     SplitIndexFile.
//
// # The persistent database index
//
// NewDatabase pays the full preprocessing cost — FASTA parse, residue
// encoding, the length sort — on every construction. WriteIndexFile
// persists the finished product as a .swdb image (internal/seqdb/index
// documents the exact layout); OpenIndexFile restores it with O(1) work
// per sequence, and LoadDatabaseFile accepts either representation,
// sniffed by magic, which is what every -db CLI flag uses:
//
//	db, err := heterosw.LoadDatabaseFile("swissprot.swdb") // or .fasta
//	cl, err := heterosw.NewCluster(db, heterosw.ClusterOptions{...})
//
// A corrupted or truncated index fails to open with an error wrapping
// ErrBadIndex — never a panic — and a checksum-derived identity key lets
// shards split from the same index share backend engines across loads.
// Loading from .swdb and loading from FASTA are conformant: every entry
// point returns byte-identical results over either path (pinned by the
// conformance harness for all kernel variants, including the 8-bit
// ladder).
//
// # Quick start
//
//	db, queries := heterosw.SyntheticSwissProt(0.01, true)
//	res, err := db.Search(queries[0], heterosw.Options{TopK: 10})
//	if err != nil { ... }
//	for _, h := range res.Hits {
//	    fmt.Println(h.ID, h.Score)
//	}
//
// # Cluster search
//
// The paper statically splits the database between exactly one Xeon and
// one Xeon Phi and names a dynamic distribution strategy as future work.
// NewCluster builds that future work: a dispatcher over any device roster,
// with the static split reproducing Algorithm 2 exactly when the roster is
// {xeon, phi}, and a work-stealing chunk queue ("dynamic"/"guided") that
// lets idle devices claim lane-group chunks as they drain:
//
//	cl, err := heterosw.NewCluster(db, heterosw.ClusterOptions{
//	    Devices: []heterosw.DeviceKind{heterosw.DeviceXeon, heterosw.DevicePhi, heterosw.DevicePhi},
//	    Dist:    "dynamic",
//	})
//	results, err := cl.SearchBatch(queries) // amortises pre-processing
//
// # Streaming and serving
//
// Streams deliver results in submission order whatever order the
// concurrent micro-batches complete in; Submit never blocks, and a
// bounded forwarding window keeps completed-result memory finite however
// far the producer runs ahead of the consumer. Close drains
// gracefully; CloseNow — or cancelling the NewStream context — drops
// queued work, aborts in-flight batches at their next query boundary and
// closes Results, so an abandoned consumer never strands a worker:
//
//	st := cl.NewStream(ctx)
//	for _, q := range queries { st.Submit(q) }
//	st.Close()
//	for sr := range st.Results() { ... } // sr.Index is the submission order
//
// SearchScheduled is the one-call serving entry point (used by the
// cmd/swserve HTTP server): concurrent callers coalesce into micro-batches
// and repeated queries are answered from the cluster's LRU result cache.
// ClusterOptions.MaxInFlight, BatchWindow, MaxBatch and CacheSize tune the
// scheduler.
//
// # Aligned-hit reporting
//
// Every Cluster entry point — Search, SearchBatch, SearchScheduled and
// Stream.Submit — accepts an optional trailing ReportOptions selecting
// the two-phase reporting pipeline of production search services (the
// SSW Library's score-then-traceback design): phase one is the vectorised
// score pass over the whole database, phase two re-aligns the query
// against only the top-K hits, fanned out across the cluster roster:
//
//	res, err := cl.Search(query, heterosw.ReportOptions{
//	    Alignments: true, // coordinates, CIGAR, identities per hit
//	    EValues:    true, // bit score + E-value from a fitted null model
//	    TopK:       10,   // K: the number of hits reported and aligned
//	})
//	for _, h := range res.Hits {
//	    fmt.Println(h.ID, h.Score, h.Alignment.CIGAR, h.Significance.EValue)
//	}
//
// The traceback phase only ever aligns K sequences, never the full
// database. Report options are part of the scheduler's dedup/cache key,
// so an aligned result and a score-only result of the same query never
// alias. WriteReport renders a decorated result as a BLAST-style text
// report (swsearch -blast); WriteFormat adds SAM 1.6 and BLAST tabular
// TSV renderings (swsearch -outfmt sam|tsv); the HTTP front end exposes
// the same phases as the align, evalue and format request fields.
//
// # Alphabets and translated search
//
// Databases and queries carry their alphabet. FASTA parsed through the
// DNA entry points (ReadDNAFASTAFile, LoadDNADatabaseFile, swsearch
// -dna) encodes under the 15-letter IUPAC nucleotide alphabet — case
// insensitive, with unrecognised bytes becoming N — and searches default
// to the blastn-style NUC +2/-3 matrix; .swdb indexes persist the
// alphabet and restore it on load. SearchTranslated searches a DNA query
// against a protein database in all six reading frames and merges the
// per-frame results, reporting each hit's winning frame and the aligned
// region's forward-strand DNA coordinates. SearchMatrix (and the
// MatrixText option, the -matrixfile flag and the HTTP matrix field)
// scores one request with a user matrix parsed from NCBI textual form;
// rejected matrix text wraps ErrBadMatrix.
//
// # Tools
//
// The cmd/swindex tool builds, inspects and shards .swdb indexes
// (swindex build db.fasta -o db.swdb; swindex split db.swdb -n 4);
// cmd/swbench regenerates every figure of the
// paper's evaluation and compares distribution strategies over arbitrary
// rosters (-devices xeon,phi,phi -dist dynamic), planning over a real
// database with -db; cmd/swserve fronts a cluster with the JSON search
// API (/search, /batch, /healthz) — give it a .swdb and restarts are
// near-instant, a -shards node and a -manifest/-nodes coordinator make
// it multi-node — and examples/loadgen load-tests it; see DESIGN.md for
// the system inventory and EXPERIMENTS.md for the paper-versus-measured
// comparison.
package heterosw
