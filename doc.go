// Package heterosw is a Smith-Waterman protein database search library for
// heterogeneous systems, reproducing Rucci et al., "Smith-Waterman
// Algorithm on Heterogeneous Systems: A Case Study" (IEEE CLUSTER 2014).
//
// The library provides:
//
//   - exact local alignment (Smith-Waterman with affine gaps) with
//     traceback for pairwise use — see Align, Score and ScoreBanded;
//   - a parallel database-search engine with the paper's six kernel
//     variants ({no-vec, guided-simd, intrinsic} x {query profile, score
//     profile}), cache blocking, 16-bit saturating arithmetic with 32-bit
//     overflow escalation, and intra-task handling of extremely long
//     subjects — see Database.Search;
//   - the heterogeneous CPU+coprocessor execution of the paper's
//     Algorithm 2, with a static workload split and overlapped offload —
//     see Database.SearchHetero;
//   - deterministic performance models of the paper's two devices (dual
//     Xeon E5-2670 host, 60-core Xeon Phi) that report simulated GCUPS
//     alongside the real wall-clock throughput of the pure-Go kernels;
//   - a synthetic Swiss-Prot workload generator matching the statistics of
//     the paper's benchmark database, plus FASTA I/O for real data.
//
// # Quick start
//
//	db, queries := heterosw.SyntheticSwissProt(0.01, true)
//	res, err := db.Search(queries[0], heterosw.Options{TopK: 10})
//	if err != nil { ... }
//	for _, h := range res.Hits {
//	    fmt.Println(h.ID, h.Score)
//	}
//
// The cmd/swbench tool regenerates every figure of the paper's evaluation;
// see DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured comparison.
package heterosw
