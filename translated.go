package heterosw

import (
	"context"
	"fmt"
	"sort"

	"heterosw/internal/alphabet"
	"heterosw/internal/core"
	"heterosw/internal/sequence"
	"heterosw/internal/translate"
)

// SearchTranslated performs a blastx-style translated search: a DNA query
// is translated in all six reading frames, each frame is searched against
// the cluster's protein database with the unmodified protein kernels (one
// batch, so shard splits and lane packings amortise across the frames),
// and the per-frame score lists are merged by each subject's best frame.
// Hits carry the winning frame (Hit.Frame) and, when ReportOptions
// requests alignments, the nucleotide coordinates of the aligned segment
// on the original query (HitAlignment.QueryDNAStart/End).
//
// The query must be a DNA sequence (NewDNASequence, ReadDNAFASTA) and the
// database a protein one. It is the context-free convenience root;
// cancellable callers use SearchTranslatedContext.
//
//sw:ctxroot
func (c *Cluster) SearchTranslated(query Sequence, report ...ReportOptions) (*ClusterResult, error) {
	return c.searchTranslated(context.Background(), query, c.dopt, report)
}

// SearchTranslatedContext is SearchTranslated with cancellation: ctx is
// checked at every frame boundary of the batched score pass and threaded
// through the per-frame traceback fan-out.
func (c *Cluster) SearchTranslatedContext(ctx context.Context, query Sequence, report ...ReportOptions) (*ClusterResult, error) {
	return c.searchTranslated(ctx, query, c.dopt, report)
}

// SearchTranslatedMatrix is SearchTranslated with a request-scoped
// substitution matrix, parsed from NCBI-format text against the protein
// alphabet the frame queries score under (see SearchMatrix). Parse
// failures wrap ErrBadMatrix.
//
//sw:ctxroot
func (c *Cluster) SearchTranslatedMatrix(query Sequence, matrixText string, report ...ReportOptions) (*ClusterResult, error) {
	return c.SearchTranslatedMatrixContext(context.Background(), query, matrixText, report...)
}

// SearchTranslatedMatrixContext is SearchTranslatedMatrix with
// cancellation (see SearchTranslatedContext for the semantics).
func (c *Cluster) SearchTranslatedMatrixContext(ctx context.Context, query Sequence, matrixText string, report ...ReportOptions) (*ClusterResult, error) {
	dopt, err := c.doptWithMatrix(matrixText)
	if err != nil {
		return nil, err
	}
	return c.searchTranslated(ctx, query, dopt, report)
}

func (c *Cluster) searchTranslated(ctx context.Context, query Sequence, dopt core.DispatchOptions, report []ReportOptions) (*ClusterResult, error) {
	rep, err := oneReport(report)
	if err != nil {
		return nil, err
	}
	if err := c.checkReport(rep); err != nil {
		return nil, err
	}
	if query.impl == nil {
		return nil, fmt.Errorf("heterosw: zero-value query")
	}
	if query.impl.Alphabet() != alphabet.DNA {
		return nil, fmt.Errorf("heterosw: translated search needs a DNA query, got %s", query.Alphabet())
	}
	if c.db.db.Alphabet() != alphabet.Protein {
		return nil, fmt.Errorf("heterosw: translated search needs a protein database, got %s", c.db.Alphabet())
	}
	frames := translate.Frames(query.impl.Residues)
	impls := make([]*sequence.Sequence, 0, len(frames))
	used := make([]*translate.Frame, 0, len(frames))
	for _, f := range frames {
		if len(f.Protein) == 0 {
			continue
		}
		impls = append(impls, &sequence.Sequence{
			ID:       fmt.Sprintf("%s|frame%+d", query.impl.ID, f.Index),
			Desc:     query.impl.Desc,
			Residues: f.Protein,
		})
		used = append(used, f)
	}
	if len(impls) == 0 {
		return nil, fmt.Errorf("heterosw: query %s is too short to translate (%d nt)",
			query.ID(), query.Len())
	}
	e := c.engine()
	res, err := e.disp.SearchBatchContext(ctx, impls, dopt)
	if err != nil {
		return nil, err
	}
	merged, frameOf := c.mergeFrames(e, res, used)
	if err := c.decorateTranslated(ctx, e, impls, used, frameOf, merged, rep, dopt); err != nil {
		return nil, err
	}
	return merged, nil
}

// mergeFrames folds the per-frame results into one: each subject keeps its
// best frame score (ties to the earlier frame, in +1..+3, -1..-3 order),
// cost accounting sums over frames, and the hit list is rebuilt from the
// merged scores with the cluster-wide truncation. The second return value
// maps each database index to the index (into frames) of its winning
// frame.
func (c *Cluster) mergeFrames(e *engineState, res []*core.ClusterResult, frames []*translate.Frame) (*ClusterResult, []int) {
	merged := c.wrap(e, res[0])
	frameOf := make([]int, len(merged.Scores))
	for i := 1; i < len(res); i++ {
		w := c.wrap(e, res[i])
		for s, v := range w.Scores {
			if v > merged.Scores[s] {
				merged.Scores[s] = v
				frameOf[s] = i
			}
		}
		merged.Cells += w.Cells
		merged.SimSeconds += w.SimSeconds
		merged.WallSeconds += w.WallSeconds
		merged.Overflows += w.Overflows
		merged.Overflows8 += w.Overflows8
		for b := range merged.Backends {
			merged.Backends[b].Chunks += w.Backends[b].Chunks
			merged.Backends[b].SimSeconds += w.Backends[b].SimSeconds
		}
	}
	if merged.SimSeconds > 0 {
		merged.SimGCUPS = float64(merged.Cells) / merged.SimSeconds / 1e9
	}
	if merged.WallSeconds > 0 {
		merged.WallGCUPS = float64(merged.Cells) / merged.WallSeconds / 1e9
	}
	merged.Hits = c.translatedHits(merged.Scores, frames, frameOf)
	if k := c.dopt.Search.TopK; k > 0 && k < len(merged.Hits) {
		merged.Hits = merged.Hits[:k]
	}
	return merged, frameOf
}

// translatedHits builds the full descending hit list over merged scores,
// stamping each hit with its winning frame. The stable tie order matches
// hitsFromScores (database order).
func (c *Cluster) translatedHits(scores []int, frames []*translate.Frame, frameOf []int) []Hit {
	hits := make([]Hit, len(scores))
	for i, s := range scores {
		hits[i] = Hit{Index: i, ID: c.db.Seq(i).ID(), Score: s, Frame: frames[frameOf[i]].Index}
	}
	sort.SliceStable(hits, func(a, b int) bool { return hits[a].Score > hits[b].Score })
	return hits
}

// decorateTranslated mirrors decorate for a merged translated result: the
// same trim and significance rules, with the traceback phase fanned out
// per winning frame so every hit is re-aligned against the frame that
// produced its score, then mapped back to nucleotide coordinates.
func (c *Cluster) decorateTranslated(ctx context.Context, e *engineState, impls []*sequence.Sequence,
	frames []*translate.Frame, frameOf []int, res *ClusterResult, rep ReportOptions,
	dopt core.DispatchOptions) error {
	if rep == (ReportOptions{}) {
		return nil
	}
	if rep.TopK > 0 && rep.TopK > len(res.Hits) && len(res.Hits) < len(res.Scores) {
		res.Hits = c.translatedHits(res.Scores, frames, frameOf)
	}
	if rep.TopK > 0 && rep.TopK < len(res.Hits) {
		res.Hits = res.Hits[:rep.TopK]
	} else if (rep.Alignments || rep.EValues) && rep.TopK <= 0 &&
		c.dopt.Search.TopK <= 0 && len(res.Hits) > defaultReportHits {
		res.Hits = res.Hits[:defaultReportHits]
	}
	if rep.EValues {
		sig, err := res.FitSignificance(rep.EValueTrim)
		if err != nil {
			return fmt.Errorf("%w (%v)", ErrNoSignificance, err)
		}
		res.Significance = sig
		for i := range res.Hits {
			h := &res.Hits[i]
			h.Significance = &HitSignificance{
				BitScore: sig.BitScore(h.Score),
				EValue:   sig.EValue(h.Score),
			}
		}
	}
	if rep.Alignments {
		// Group the reported hits by winning frame; each group tracebacks
		// against its own frame query.
		byFrame := make(map[int][]int, len(impls))
		for i := range res.Hits {
			fi := frameOf[res.Hits[i].Index]
			byFrame[fi] = append(byFrame[fi], i)
		}
		for fi, hitIdx := range byFrame {
			hits := make([]core.Hit, len(hitIdx))
			for j, i := range hitIdx {
				h := res.Hits[i]
				hits[j] = core.Hit{SeqIndex: h.Index, ID: h.ID, Score: int32(h.Score)}
			}
			details, err := e.disp.AlignHits(ctx, impls[fi], hits, dopt)
			if err != nil {
				return err
			}
			for j := range details {
				d := &details[j]
				ds, de := frames[fi].DNARange(d.QueryStart, d.QueryEnd)
				res.Hits[hitIdx[j]].Alignment = &HitAlignment{
					QueryStart:    d.QueryStart,
					QueryEnd:      d.QueryEnd,
					SubjectStart:  d.SubjectStart,
					SubjectEnd:    d.SubjectEnd,
					QueryDNAStart: ds,
					QueryDNAEnd:   de,
					CIGAR:         d.CIGAR,
					Identities:    d.Identities,
					Columns:       d.Columns,
				}
			}
		}
	}
	return nil
}
