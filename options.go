package heterosw

import (
	"fmt"
	"strings"

	"heterosw/internal/alphabet"
	"heterosw/internal/core"
	"heterosw/internal/device"
	"heterosw/internal/sched"
	"heterosw/internal/submat"
)

// ErrBadMatrix is the family sentinel wrapped by every rejected
// user-supplied substitution matrix (Options.MatrixText, the swsearch
// -matrixfile flag, the HTTP "matrix" field): test with errors.Is. The
// three members name the specific defect — an alphabet line that does not
// match the target alphabet, a non-square or asymmetric score table, and
// scores outside the int8 range the 8-bit ladder's bias arithmetic
// requires.
var (
	ErrBadMatrix         = submat.ErrBadMatrix
	ErrBadMatrixAlphabet = submat.ErrBadAlphabet
	ErrMatrixNotSquare   = submat.ErrNotSquare
	ErrMatrixScoreRange  = submat.ErrScoreRange
)

// DeviceKind names one of the modelled devices.
type DeviceKind string

const (
	// DeviceXeon is the host model: 2x Intel Xeon E5-2670, 16 cores, 32
	// hardware threads, 256-bit SIMD.
	DeviceXeon DeviceKind = "xeon"
	// DevicePhi is the coprocessor model: Intel Xeon Phi, 60 cores, 240
	// hardware threads, 512-bit SIMD, PCIe offload.
	DevicePhi DeviceKind = "phi"
)

func (k DeviceKind) model() (*device.Model, error) {
	switch k {
	case "", DeviceXeon:
		return device.Xeon(), nil
	case DevicePhi:
		return device.Phi(), nil
	}
	return nil, fmt.Errorf("heterosw: unknown device %q (have xeon, phi)", string(k))
}

// DeviceInfo describes a modelled device.
type DeviceInfo struct {
	Kind     DeviceKind
	Name     string
	Cores    int
	Threads  int
	Lanes    int
	TDPWatts float64
}

// Devices lists the modelled devices.
func Devices() []DeviceInfo {
	out := make([]DeviceInfo, 0, 2)
	for _, k := range []DeviceKind{DeviceXeon, DevicePhi} {
		m, _ := k.model()
		out = append(out, DeviceInfo{
			Kind: k, Name: m.Name, Cores: m.Cores,
			Threads: m.MaxThreads(), Lanes: m.Lanes, TDPWatts: m.TDPWatts,
		})
	}
	return out
}

// Variant names. See the paper's Section V: vectorisation mode x
// substitution-score layout. The intrinsic variants additionally accept an
// "-8bit" suffix selecting the adaptive precision ladder: an 8-bit biased
// first pass with twice the lanes per vector word, escalating saturated
// lanes to 16 and then 32 bits.
const (
	VariantNoVecQP      = "no-vec-QP"
	VariantNoVecSP      = "no-vec-SP"
	VariantGuidedQP     = "simd-QP"
	VariantGuidedSP     = "simd-SP"
	VariantIntrinsicQP  = "intrinsic-QP"
	VariantIntrinsicSP  = "intrinsic-SP"
	VariantIntrinsicQP8 = "intrinsic-QP-8bit"
	VariantIntrinsicSP8 = "intrinsic-SP-8bit"
)

// Variants lists the kernel variant names in the paper's order, followed
// by the 8-bit ladder forms of the intrinsic variants.
func Variants() []string {
	out := make([]string, 0, 8)
	for _, v := range core.Variants() {
		out = append(out, v.String())
	}
	return append(out, VariantIntrinsicQP8, VariantIntrinsicSP8)
}

// Options configures a database search. The zero value reproduces the
// paper's best configuration: intrinsic-SP kernels with blocking, BLOSUM62,
// gap open 10 / extend 2, dynamic scheduling, all device threads.
type Options struct {
	// Device selects the performance model used for simulated timing
	// (DeviceXeon when empty).
	Device DeviceKind
	// Variant is a kernel variant name (VariantIntrinsicSP when empty).
	Variant string
	// Matrix is a built-in substitution matrix name: BLOSUM45/50/62/80,
	// PAM250 or NUC (the blastn +2/-3 nucleotide scheme). When empty the
	// database alphabet's conventional default applies: BLOSUM62 for
	// protein, NUC for DNA.
	Matrix string
	// MatrixText, when non-empty, supplies a custom substitution matrix in
	// the NCBI textual format, parsed against the database's alphabet. It
	// overrides Matrix. Parse failures wrap ErrBadMatrix.
	MatrixText string
	// GapOpen and GapExtend are the affine gap penalties q and r of the
	// paper's Eq. 5; a gap of length x costs q + r*x. Both default to the
	// paper's 10 and 2 when zero. Use NoGapDefaults to pass literal
	// zeros.
	GapOpen, GapExtend int
	// NoGapDefaults disables the 10/2 defaulting above.
	NoGapDefaults bool
	// NoBlocking disables the cache-blocking optimisation (Figure 7's
	// "non-blocking" curves).
	NoBlocking bool
	// BlockRows overrides the blocking tile height (256 when zero).
	BlockRows int
	// Threads is the simulated device thread count (device maximum when
	// zero).
	Threads int
	// Schedule is the OpenMP loop policy: "dynamic" (default), "static"
	// or "guided".
	Schedule string
	// ChunkSize is the scheduling chunk (1 when zero).
	ChunkSize int
	// Workers caps real host goroutines for functional execution
	// (GOMAXPROCS when zero); it does not affect simulated time.
	Workers int
	// TopK truncates the hit list (all hits when zero).
	TopK int
	// LongSeqThreshold routes subjects longer than this to the intra-task
	// kernel (3072 when zero; negative disables routing).
	LongSeqThreshold int
	// IntraKernel selects the long-sequence kernel: "wavefront"
	// (anti-diagonal, the default) or "striped" (Farrar's striped layout
	// with lazy-F). Scores are identical.
	IntraKernel string
}

// toCore resolves the options against the target database's alphabet,
// which governs the default matrix and the alphabet custom matrix text is
// parsed under.
func (o Options) toCore(alpha *alphabet.Alphabet) (core.SearchOptions, error) {
	out := core.SearchOptions{
		Threads:          o.Threads,
		ChunkSize:        o.ChunkSize,
		Workers:          o.Workers,
		TopK:             o.TopK,
		LongSeqThreshold: o.LongSeqThreshold,
	}
	variant := o.Variant
	if variant == "" {
		variant = VariantIntrinsicSP
	}
	v, prec, err := core.ParseVariantSpec(variant)
	if err != nil {
		return out, err
	}
	var m *submat.Matrix
	switch {
	case o.MatrixText != "":
		m, err = submat.Parse("custom", strings.NewReader(o.MatrixText), alpha)
	case o.Matrix != "":
		m, err = submat.ByName(o.Matrix)
	default:
		// Leave nil: the engine applies the alphabet's default
		// (BLOSUM62 for protein, NUC for DNA).
	}
	if err != nil {
		return out, err
	}
	schedule := o.Schedule
	if schedule == "" {
		schedule = "dynamic"
	}
	pol, err := sched.ParsePolicy(schedule)
	if err != nil {
		return out, err
	}
	gapOpen, gapExtend := o.GapOpen, o.GapExtend
	if !o.NoGapDefaults {
		if gapOpen == 0 {
			gapOpen = 10
		}
		if gapExtend == 0 {
			gapExtend = 2
		}
	}
	switch o.IntraKernel {
	case "", "wavefront":
	case "striped":
		out.StripedIntra = true
	default:
		return out, fmt.Errorf("heterosw: unknown intra kernel %q (have wavefront, striped)", o.IntraKernel)
	}
	out.Params = core.Params{
		Variant:   v,
		GapOpen:   gapOpen,
		GapExtend: gapExtend,
		Blocked:   !o.NoBlocking,
		BlockRows: o.BlockRows,
		Prec:      prec,
	}
	out.Matrix = m
	out.Schedule = pol
	return out, nil
}
