package heterosw

import (
	"fmt"
	"sync"
	"testing"
)

func TestClusterMatchesSingleDevice(t *testing.T) {
	db, queries := SyntheticSwissProt(0.001, true)
	q := queries[2]
	single, err := db.Search(q, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, dist := range []string{"static", "dynamic", "guided"} {
		cl, err := NewCluster(db, ClusterOptions{
			Devices: []DeviceKind{DeviceXeon, DevicePhi, DevicePhi},
			Dist:    dist,
		})
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		res, err := cl.Search(q)
		if err != nil {
			t.Fatalf("%s: %v", dist, err)
		}
		for i := range single.Scores {
			if res.Scores[i] != single.Scores[i] {
				t.Fatalf("%s: score %d: cluster %d != single %d", dist, i, res.Scores[i], single.Scores[i])
			}
		}
		if len(res.Backends) != 3 {
			t.Fatalf("%s: %d backend reports", dist, len(res.Backends))
		}
		var share float64
		for _, b := range res.Backends {
			share += b.Share
		}
		if share < 0.999 || share > 1.001 {
			t.Fatalf("%s: shares sum to %v", dist, share)
		}
		if res.SimSeconds <= 0 || res.SimGCUPS <= 0 {
			t.Fatalf("%s: timing %+v", dist, res.Result)
		}
	}
}

func TestClusterDefaultsToPaperPair(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	devs := cl.Devices()
	if len(devs) != 2 || devs[0] != DeviceXeon || devs[1] != DevicePhi {
		t.Fatalf("default roster %v", devs)
	}
	res, err := cl.Search(NewSequence("q", "MKWVLA"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 4 {
		t.Fatalf("%d hits", len(res.Hits))
	}
}

func TestClusterSearchBatch(t *testing.T) {
	db, queries := SyntheticSwissProt(0.001, true)
	cl, err := NewCluster(db, ClusterOptions{
		Devices: []DeviceKind{DeviceXeon, DevicePhi},
		Dist:    "dynamic",
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := queries[:3]
	results, err := cl.SearchBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("%d results", len(results))
	}
	for i, q := range batch {
		single, err := db.Search(q, Options{})
		if err != nil {
			t.Fatal(err)
		}
		for j := range single.Scores {
			if results[i].Scores[j] != single.Scores[j] {
				t.Fatalf("query %d seq %d: batch %d != single %d", i, j, results[i].Scores[j], single.Scores[j])
			}
		}
	}
	if _, err := cl.SearchBatch([]Sequence{{}}); err == nil {
		t.Error("zero-value query accepted in batch")
	}
}

func TestClusterStreaming(t *testing.T) {
	db, queries := SyntheticSwissProt(0.001, true)
	cl, err := NewCluster(db, ClusterOptions{Dist: "dynamic"})
	if err != nil {
		t.Fatal(err)
	}
	const n = 5
	for i := 0; i < n; i++ {
		if err := cl.Submit(queries[i]); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	got := 0
	for sr := range cl.Results() {
		if sr.Err != nil {
			t.Fatalf("stream result %d: %v", sr.Index, sr.Err)
		}
		if sr.Index != got {
			t.Fatalf("result %d arrived out of order (want %d)", sr.Index, got)
		}
		if sr.Query.ID() != queries[sr.Index].ID() {
			t.Fatalf("result %d carries query %q", sr.Index, sr.Query.ID())
		}
		single, err := db.Search(queries[sr.Index], Options{})
		if err != nil {
			t.Fatal(err)
		}
		if sr.Result.Hits[0].ID != single.Hits[0].ID {
			t.Fatalf("result %d top hit %q != %q", sr.Index, sr.Result.Hits[0].ID, single.Hits[0].ID)
		}
		got++
	}
	if got != n {
		t.Fatalf("drained %d of %d results", got, n)
	}
	if err := cl.Submit(queries[0]); err == nil {
		t.Error("Submit after Close accepted")
	}
	cl.Close() // idempotent
}

// The submit-everything-then-drain pattern must work for batches far
// larger than any internal buffer: Submit never blocks, so a producer
// that only starts reading Results after its last Submit cannot deadlock.
func TestClusterStreamingLargeBacklog(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	const n = 200
	q := NewSequence("q", "MKWVLA")
	for i := 0; i < n; i++ {
		if err := cl.Submit(q); err != nil {
			t.Fatal(err)
		}
	}
	cl.Close()
	got := 0
	for sr := range cl.Results() {
		if sr.Err != nil {
			t.Fatal(sr.Err)
		}
		if sr.Index != got {
			t.Fatalf("result %d out of order (want %d)", sr.Index, got)
		}
		got++
	}
	if got != n {
		t.Fatalf("drained %d of %d", got, n)
	}
}

func TestClusterCloseWithoutSubmit(t *testing.T) {
	db, _ := tinyDB(t)
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, ok := <-cl.Results(); ok {
		t.Fatal("Results not closed")
	}
}

func TestClusterOptionErrors(t *testing.T) {
	db, _ := tinyDB(t)
	cases := []ClusterOptions{
		{Devices: []DeviceKind{"gpu"}},
		{Dist: "adaptive"},
		{Devices: []DeviceKind{DeviceXeon}, Threads: []int{99999}},
		{Devices: []DeviceKind{DeviceXeon, DevicePhi}, Shares: []float64{1}},
		{Options: Options{Variant: "nope"}},
	}
	for i, opt := range cases {
		if _, err := NewCluster(db, opt); err == nil {
			t.Errorf("case %d accepted: %+v", i, opt)
		}
	}
	if _, err := NewCluster(nil, ClusterOptions{}); err == nil {
		t.Error("nil database accepted")
	}
	cl, err := NewCluster(db, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Search(Sequence{}); err == nil {
		t.Error("zero-value query accepted")
	}
	if err := cl.Submit(Sequence{}); err == nil {
		t.Error("zero-value query submitted")
	}
}

// TestClusterConcurrentHammer drives concurrent Search, SearchBatch and
// plain Database.Search traffic over one Database from many goroutines.
// Run under -race (as CI does) it proves the lazy engine caches, shard and
// chunk caches and score merges are properly synchronised.
func TestClusterConcurrentHammer(t *testing.T) {
	db, queries := SyntheticSwissProt(0.0003, true)
	static, err := NewCluster(db, ClusterOptions{Devices: []DeviceKind{DeviceXeon, DevicePhi, DevicePhi}})
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := NewCluster(db, ClusterOptions{
		Devices: []DeviceKind{DeviceXeon, DevicePhi},
		Dist:    "dynamic",
	})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.Search(queries[0], Options{})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	check := func(scores []int) error {
		for i := range want.Scores {
			if scores[i] != want.Scores[i] {
				return fmt.Errorf("score %d diverged under concurrency", i)
			}
		}
		return nil
	}
	for g := 0; g < 3; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for k := 0; k < 2; k++ {
				res, err := static.Search(queries[0])
				if err == nil {
					err = check(res.Scores)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}()
		go func() {
			defer wg.Done()
			batch, err := dynamic.SearchBatch([]Sequence{queries[0], queries[0]})
			if err != nil {
				errc <- err
				return
			}
			for _, r := range batch {
				if err := check(r.Scores); err != nil {
					errc <- err
					return
				}
			}
		}()
		go func(dev DeviceKind) {
			defer wg.Done()
			for k := 0; k < 2; k++ {
				res, err := db.Search(queries[0], Options{Device: dev})
				if err == nil {
					err = check(res.Scores)
				}
				if err != nil {
					errc <- err
					return
				}
			}
		}(map[int]DeviceKind{0: DeviceXeon, 1: DevicePhi}[g%2])
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}
}
