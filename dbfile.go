package heterosw

import (
	"fmt"

	"heterosw/internal/alphabet"
	"heterosw/internal/core"
	"heterosw/internal/seqdb/index"
)

// ErrBadIndex is returned (wrapped) when a .swdb file fails to open:
// truncation, foreign magic, an unknown format version, a checksum
// mismatch or an inconsistent layout. Use errors.Is to test the family.
var ErrBadIndex = index.ErrBadIndex

// WriteIndexFile persists a database as a .swdb index: a binary image of
// the fully preprocessed database (encoded residues in length-sorted
// order, the sort permutation, header strings and precomputed lane-group
// shapes) that OpenIndexFile restores without re-parsing or re-sorting.
// Build once per database release — the swindex CLI wraps exactly this —
// and every swsearch/swserve/swbench start afterwards is O(1) per
// sequence instead of a full FASTA parse.
func WriteIndexFile(path string, db *Database) error {
	if db == nil {
		return fmt.Errorf("heterosw: nil database")
	}
	_, err := index.WriteFile(path, db.db)
	return err
}

// OpenIndexFile loads a .swdb index written by WriteIndexFile (or swindex
// build). Sequences are sliced zero-copy out of the file's contiguous
// residue arena, and the database carries a checksum-derived identity key
// so shards split from the same index share backend engines and lane
// packings.
func OpenIndexFile(path string) (*Database, error) {
	ix, err := index.Open(path)
	if err != nil {
		return nil, err
	}
	return &Database{db: ix.Database(), engines: make(map[DeviceKind]*core.Engine)}, nil
}

// LoadDatabaseFile opens either database representation, sniffed by
// content: a .swdb index (restored zero-copy, no parse or sort) or a
// FASTA file (parsed, encoded and length-sorted). Every CLI database
// flag accepts both through this one entry point.
func LoadDatabaseFile(path string) (*Database, error) {
	db, _, err := index.LoadDatabase(path)
	if err != nil {
		return nil, err
	}
	return &Database{db: db, engines: make(map[DeviceKind]*core.Engine)}, nil
}

// LoadDNADatabaseFile is LoadDatabaseFile for nucleotide databases: a
// FASTA file is parsed under the IUPAC DNA alphabet (see NewDNASequence),
// while a .swdb index — which records its own alphabet — loads exactly as
// with LoadDatabaseFile.
func LoadDNADatabaseFile(path string) (*Database, error) {
	db, _, err := index.LoadDatabaseAlpha(path, alphabet.DNA)
	if err != nil {
		return nil, err
	}
	return &Database{db: db, engines: make(map[DeviceKind]*core.Engine)}, nil
}

// IsIndexFile reports whether path begins with the .swdb magic. A missing
// or unreadable file reports false.
func IsIndexFile(path string) bool {
	return index.SniffFile(path)
}
